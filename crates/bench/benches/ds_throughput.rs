//! Data-structure push/pop throughput — the congestion behaviour underlying
//! Figures 4–5.
//!
//! Single-threaded cost per op for each structure (pure overhead ranking),
//! a small contended producer/consumer scenario, the scalar-vs-batched
//! comparison for the batch API (`push_batch`/`try_pop_batch`) at batch
//! sizes 1/8/32/128, and the flat-combining A/B on the structural pool
//! (`ds_combine`: delegation vs plain mutex, throughput plus per-op
//! p50/p99/p999 from an HDR-style histogram).
//!
//! To record a JSON baseline (e.g. the committed `BENCH_batch.json`):
//! `CRITERION_JSON_OUT=BENCH_batch.json cargo bench --bench ds_throughput -- ds_batch`
//!
//! Pools are built through the runtime facade ([`PoolKind::build`]); the
//! erased handle adds one predictable branch per operation, uniform across
//! every structure and across the scalar and batch arms, so ratios remain
//! comparable (absolute numbers shift slightly vs pre-facade baselines).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use priosched_bench::latency::LatencyHist;
use priosched_core::{AnyPool, PoolHandle, PoolKind, PoolParams, TaskPool};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const OPS: u64 = 10_000;

/// The shared sweep parameters: k = 64 for the structural prototype's
/// buffers, the paper's kmax = 512 for the centralized structure.
fn pool(kind: PoolKind, places: usize) -> Arc<AnyPool<u64>> {
    Arc::new(kind.build(places, PoolParams::with_k(64)))
}

#[inline]
fn prio_of(i: u64) -> u64 {
    // Pseudo-random priorities; xorshift-style scramble of i.
    i.wrapping_mul(0x9E3779B97F4A7C15) >> 32
}

fn push_pop_cycle(pool: Arc<AnyPool<u64>>) {
    let mut h = pool.handle(0);
    for i in 0..OPS {
        h.push(prio_of(i), 64, i);
    }
    let mut got = 0;
    while h.pop().is_some() {
        got += 1;
    }
    assert_eq!(got, OPS);
}

/// Same workload as [`push_pop_cycle`], but routed through the batch API.
fn push_pop_cycle_batched(pool: Arc<AnyPool<u64>>, batch: usize) {
    let mut h = pool.handle(0);
    let mut buf: Vec<(u64, u64)> = Vec::with_capacity(batch);
    let mut i = 0u64;
    while i < OPS {
        let n = batch.min((OPS - i) as usize);
        for _ in 0..n {
            buf.push((prio_of(i), i));
            i += 1;
        }
        h.push_batch(64, &mut buf);
    }
    let mut out: Vec<u64> = Vec::with_capacity(batch);
    let mut got = 0;
    loop {
        out.clear();
        let n = h.try_pop_batch(&mut out, batch);
        if n == 0 {
            break;
        }
        got += n as u64;
    }
    assert_eq!(got, OPS);
}

fn bench_single_thread(c: &mut Criterion) {
    let mut g = c.benchmark_group("ds_single_thread_push_pop");
    g.throughput(Throughput::Elements(2 * OPS));
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    for kind in PoolKind::ALL {
        g.bench_function(kind.id(), |b| b.iter(|| push_pop_cycle(pool(kind, 1))));
    }
    g.finish();
}

fn contended_cycle(pool: Arc<AnyPool<u64>>, threads: usize) {
    let per = OPS / threads as u64;
    std::thread::scope(|s| {
        for t in 0..threads {
            let pool = Arc::clone(&pool);
            s.spawn(move || {
                let mut h = pool.handle(t);
                let mut popped = 0u64;
                for i in 0..per {
                    h.push(prio_of(i), 64, i);
                    if i % 2 == 1 {
                        // Interleave pops so both paths stay hot.
                        if h.pop().is_some() {
                            popped += 1;
                        }
                    }
                }
                while h.pop().is_some() {
                    popped += 1;
                }
                criterion::black_box(popped);
            });
        }
    });
}

/// Contended workload routed through the batch API: each round pushes a
/// batch and immediately pops up to half of it back (mirroring the
/// half-interleaved pops of [`contended_cycle`]), then drains in batches.
fn contended_cycle_batched(pool: Arc<AnyPool<u64>>, threads: usize, batch: usize) {
    let per = OPS / threads as u64;
    std::thread::scope(|s| {
        for t in 0..threads {
            let pool = Arc::clone(&pool);
            s.spawn(move || {
                let mut h = pool.handle(t);
                let mut popped = 0u64;
                let mut buf: Vec<(u64, u64)> = Vec::with_capacity(batch);
                let mut out: Vec<u64> = Vec::with_capacity(batch);
                let mut i = 0u64;
                while i < per {
                    let n = batch.min((per - i) as usize);
                    for _ in 0..n {
                        buf.push((prio_of(i), i));
                        i += 1;
                    }
                    h.push_batch(64, &mut buf);
                    out.clear();
                    popped += h.try_pop_batch(&mut out, n.div_ceil(2)) as u64;
                }
                loop {
                    out.clear();
                    let n = h.try_pop_batch(&mut out, batch);
                    if n == 0 {
                        break;
                    }
                    popped += n as u64;
                }
                criterion::black_box(popped);
            });
        }
    });
}

fn bench_contended(c: &mut Criterion) {
    let threads = 2;
    let mut g = c.benchmark_group("ds_contended_push_pop");
    g.throughput(Throughput::Elements(2 * OPS));
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    for kind in PoolKind::ALL {
        g.bench_with_input(BenchmarkId::new(kind.id(), threads), &threads, |b, &t| {
            b.iter(|| contended_cycle(pool(kind, t), t))
        });
    }
    g.finish();
}

/// Scalar-vs-batched push/pop, single place: isolates the per-operation
/// overhead the batch API amortizes (locks, free-list CASes, heap
/// repairs) without scheduling noise. Batch size 1 measures the batch
/// path's fixed overhead; sizes 8/32/128 its amortization.
fn bench_batch_single_thread(c: &mut Criterion) {
    let mut g = c.benchmark_group("ds_batch_single_thread");
    g.throughput(Throughput::Elements(2 * OPS));
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    for kind in PoolKind::ALL {
        g.bench_with_input(BenchmarkId::new(kind.id(), "scalar"), &kind, |b, &kind| {
            b.iter(|| push_pop_cycle(pool(kind, 1)))
        });
        for batch in [1usize, 8, 32, 128] {
            g.bench_with_input(
                BenchmarkId::new(kind.id(), format!("batch{batch}")),
                &batch,
                |b, &batch| b.iter(|| push_pop_cycle_batched(pool(kind, 1), batch)),
            );
        }
    }
    g.finish();
}

/// Scalar-vs-batched under contention (4 places): the acceptance scenario
/// for the batch API — amortized synchronization must beat per-op
/// synchronization once batches reach a useful size.
fn bench_batch_contended(c: &mut Criterion) {
    let threads = 4usize;
    let mut g = c.benchmark_group("ds_batch_contended");
    g.throughput(Throughput::Elements(2 * OPS));
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    for kind in PoolKind::ALL {
        g.bench_with_input(
            BenchmarkId::new(kind.id(), format!("scalar_t{threads}")),
            &threads,
            |b, &t| b.iter(|| contended_cycle(pool(kind, t), t)),
        );
        for batch in [8usize, 32, 128] {
            g.bench_with_input(
                BenchmarkId::new(kind.id(), format!("batch{batch}_t{threads}")),
                &batch,
                |b, &batch| b.iter(|| contended_cycle_batched(pool(kind, threads), threads, batch)),
            );
        }
    }
    g.finish();
}

/// Structural pool with the combining toggle explicit; everything else as
/// in [`pool`].
fn combine_pool(places: usize, combine: bool) -> Arc<AnyPool<u64>> {
    Arc::new(PoolKind::Structural.build(places, PoolParams::with_k(64).with_combining(combine)))
}

/// [`contended_cycle`] with every push/pop individually timed into a
/// per-thread [`LatencyHist`], merged across threads at the end. The
/// `Instant` pair adds a fixed cost to every op, identical across modes,
/// so combining-vs-mutex percentile *comparisons* stay fair even though
/// absolute numbers shift slightly.
fn contended_cycle_timed(pool: Arc<AnyPool<u64>>, threads: usize) -> LatencyHist {
    let merged = Mutex::new(LatencyHist::new());
    let per = OPS / threads as u64;
    std::thread::scope(|s| {
        for t in 0..threads {
            let pool = Arc::clone(&pool);
            let merged = &merged;
            s.spawn(move || {
                let mut h = pool.handle(t);
                let mut hist = LatencyHist::new();
                for i in 0..per {
                    let t0 = Instant::now();
                    h.push(prio_of(i), 64, i);
                    hist.record_duration(t0.elapsed());
                    if i % 2 == 1 {
                        let t0 = Instant::now();
                        let got = h.pop();
                        hist.record_duration(t0.elapsed());
                        criterion::black_box(got);
                    }
                }
                loop {
                    let t0 = Instant::now();
                    let got = h.pop();
                    if got.is_none() {
                        break;
                    }
                    hist.record_duration(t0.elapsed());
                }
                merged.lock().unwrap().merge(&hist);
            });
        }
    });
    merged.into_inner().unwrap()
}

/// Flat combining vs the plain shared-heap mutex on the structural pool —
/// the A/B the combiner must win (or at worst tie, at 1 place where the
/// fast path keeps it off the slot protocol entirely).
///
/// Two arms per (mode × places) cell: wall-clock throughput via the
/// normal bencher, and self-measured per-op latency percentiles
/// (`*_lat/p*` ids carry `p50_ns`/`p99_ns`/`p999_ns` in the JSON dump).
fn bench_combine(c: &mut Criterion) {
    let mut g = c.benchmark_group("ds_combine");
    g.throughput(Throughput::Elements(2 * OPS));
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    let places_sweep = [1usize, 2, 4];
    for &places in &places_sweep {
        for (mode, combine) in [("combine", true), ("mutex", false)] {
            g.bench_with_input(
                BenchmarkId::new(mode, format!("p{places}")),
                &places,
                |b, &p| b.iter(|| contended_cycle(combine_pool(p, combine), p)),
            );
        }
    }
    for &places in &places_sweep {
        for (mode, combine) in [("combine", true), ("mutex", false)] {
            let mut hist = LatencyHist::new();
            for _ in 0..3 {
                hist.merge(&contended_cycle_timed(
                    combine_pool(places, combine),
                    places,
                ));
            }
            g.report_with_percentiles(
                format!("{mode}_lat/p{places}"),
                hist.mean_ns(),
                hist.min_ns() as f64,
                hist.max_ns() as f64,
                hist.p50() as f64,
                hist.p99() as f64,
                hist.p999() as f64,
            );
        }
    }
    g.finish();
}

/// MultiQueue pool with the queues-per-place factor explicit; everything
/// else as in [`pool`].
fn mq_pool(places: usize, c: usize) -> Arc<AnyPool<u64>> {
    Arc::new(PoolKind::MultiQueue.build(places, PoolParams::with_k(64).with_mq_c(c)))
}

/// Relaxed MultiQueue vs the four exact structures — the A/B that prices
/// the relaxation. The MultiQueue's c·P queues with two-choice pops
/// should shed contention as c grows; the exact structures are the
/// quality baseline those saved nanoseconds are traded against. (The
/// quality side of the trade — rank error — is measured separately by
/// `schedbench --rank-error`, off this hot path.)
///
/// Two arms per cell, as in [`bench_combine`]: wall-clock throughput via
/// the normal bencher, and self-measured per-op percentiles (`*_lat/p*`
/// ids carry `p50_ns`/`p99_ns`/`p999_ns` in the JSON dump).
fn bench_multiqueue(c: &mut Criterion) {
    let mut g = c.benchmark_group("ds_multiqueue");
    g.throughput(Throughput::Elements(2 * OPS));
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    let places_sweep = [1usize, 2, 4];
    let exact: Vec<PoolKind> = PoolKind::ALL
        .into_iter()
        .filter(|&k| k != PoolKind::MultiQueue)
        .collect();
    for &places in &places_sweep {
        for mc in [1usize, 2, 4] {
            g.bench_with_input(
                BenchmarkId::new(format!("mq_c{mc}"), format!("p{places}")),
                &places,
                |b, &p| b.iter(|| contended_cycle(mq_pool(p, mc), p)),
            );
        }
        for &kind in &exact {
            g.bench_with_input(
                BenchmarkId::new(kind.id(), format!("p{places}")),
                &places,
                |b, &p| b.iter(|| contended_cycle(pool(kind, p), p)),
            );
        }
    }
    type PoolThunk = Box<dyn Fn() -> Arc<AnyPool<u64>>>;
    for &places in &places_sweep {
        let mut cells: Vec<(String, PoolThunk)> = Vec::new();
        for mc in [1usize, 2, 4] {
            cells.push((
                format!("mq_c{mc}_lat/p{places}"),
                Box::new(move || mq_pool(places, mc)),
            ));
        }
        for &kind in &exact {
            cells.push((
                format!("{}_lat/p{places}", kind.id()),
                Box::new(move || pool(kind, places)),
            ));
        }
        for (id, make_pool) in cells {
            let mut hist = LatencyHist::new();
            for _ in 0..3 {
                hist.merge(&contended_cycle_timed(make_pool(), places));
            }
            g.report_with_percentiles(
                id,
                hist.mean_ns(),
                hist.min_ns() as f64,
                hist.max_ns() as f64,
                hist.p50() as f64,
                hist.p99() as f64,
                hist.p999() as f64,
            );
        }
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_single_thread,
    bench_contended,
    bench_batch_single_thread,
    bench_batch_contended,
    bench_combine,
    bench_multiqueue
);
criterion_main!(benches);
