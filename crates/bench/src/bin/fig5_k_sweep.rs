//! Figure 5: total execution time and nodes relaxed for varying k
//! (n = 10000, P = 80, p = 50% in the paper).
//!
//! Series: the two k-priority structures across the paper's k axis
//! (0, 1, 2, 4, …, 32768), plus work-stealing (k-independent) and the
//! sequential relaxation count as reference lines.

use priosched_bench::{fig5_k_sweep, mean, write_csv, HarnessConfig};
use priosched_core::PoolKind;
use priosched_graph::dijkstra;
use priosched_sssp::{run_sssp_kind, run_sssp_lockstep_kind, SsspConfig};

fn main() {
    let cfg = HarnessConfig::from_args();
    cfg.banner("Figure 5: time & nodes relaxed vs k (fixed P)");
    let graphs = cfg.graph_set();
    let places = cfg.places;
    let ks = fig5_k_sweep(cfg.full);

    let seq_n = mean(graphs.iter().map(|g| dijkstra(g, 0).relaxations as f64));
    println!("sequential reference: {seq_n:.0} nodes relaxed (each node once)\n");

    let mut rows = Vec::new();

    // Work-stealing ignores k: measure once, print as the flat reference.
    // As in fig4_scaling: wall time from the threaded runner, relaxation
    // counts from the deterministic lockstep runner.
    {
        let mut times = Vec::new();
        let mut relaxed = Vec::new();
        for g in &graphs {
            let ws_cfg = SsspConfig::new(places, 0);
            let timed = run_sssp_kind(PoolKind::WorkStealing, g, 0, &ws_cfg);
            times.push(timed.elapsed.as_secs_f64());
            let ordered = run_sssp_lockstep_kind(PoolKind::WorkStealing, g, 0, &ws_cfg);
            relaxed.push(ordered.relaxed as f64);
        }
        let t = mean(times.iter().copied());
        let n = mean(relaxed.iter().copied());
        println!(
            "{:<12} (any k)  time {:>9.4}s  relaxed {:>9.0}   [flat reference]",
            PoolKind::WorkStealing.label(),
            t,
            n
        );
        rows.push(format!("Work-Stealing,any,{t:.6},{n:.1}"));
    }

    for kind in [PoolKind::Centralized, PoolKind::Hybrid] {
        println!();
        for &k in &ks {
            let mut times = Vec::new();
            let mut relaxed = Vec::new();
            for g in &graphs {
                // SsspConfig::new widens kmax to admit the swept k (the
                // structure clamps k to kmax); the paper's fixed kmax = 512
                // applies to its other experiments, while Figure 5
                // exercises k beyond it.
                let k_cfg = SsspConfig::new(places, k);
                let timed = run_sssp_kind(kind, g, 0, &k_cfg);
                times.push(timed.elapsed.as_secs_f64());
                let ordered = run_sssp_lockstep_kind(kind, g, 0, &k_cfg);
                relaxed.push(ordered.relaxed as f64);
            }
            let t = mean(times.iter().copied());
            let n = mean(relaxed.iter().copied());
            println!(
                "{:<12} k={:<6} time {:>9.4}s  relaxed {:>9.0}  (+{:.1}% useless)",
                kind.label(),
                k,
                t,
                n,
                100.0 * (n - seq_n).max(0.0) / seq_n
            );
            rows.push(format!("{},{k},{t:.6},{n:.1}", kind.label()));
        }
    }

    let path = write_csv(
        &cfg.out_dir,
        "fig5_time_and_relaxed_vs_k.csv",
        "structure,k,time_s,nodes_relaxed",
        &rows,
    )
    .unwrap();
    println!("\nreference shapes (paper, 80-core Xeon):");
    println!(" - centralized best around k ∈ [32, 128]; degrades for large k (linear search)");
    println!(" - hybrid approaches work-stealing speed for large k, wasted work stays ~half of WS");
    println!("CSV: {}", path.display());
}
