//! Compressed-sparse-row storage for undirected weighted graphs.

/// A single directed adjacency entry (one direction of an undirected edge).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Edge {
    /// Target node id.
    pub target: u32,
    /// Edge weight; the evaluation draws these uniformly from `(0, 1]`.
    pub weight: f32,
}

/// An undirected weighted graph in CSR form.
///
/// Node ids are dense `0..n`. Each undirected edge `{u, v}` appears once in
/// `u`'s list and once in `v`'s list with the same weight.
#[derive(Clone, Debug)]
pub struct CsrGraph {
    offsets: Vec<usize>,
    edges: Vec<Edge>,
}

impl CsrGraph {
    /// Builds a graph from an undirected edge list.
    ///
    /// Each `(u, v, w)` triple is inserted into both adjacency lists.
    /// Self-loops are rejected (the ER model never produces them and SSSP
    /// gains nothing from them); duplicate pairs are kept as parallel edges.
    ///
    /// # Panics
    /// Panics if any endpoint is `>= n` or if a self-loop is supplied.
    pub fn from_undirected_edges(n: usize, edge_list: &[(u32, u32, f32)]) -> Self {
        let mut degree = vec![0usize; n];
        for &(u, v, _) in edge_list {
            assert!(
                (u as usize) < n && (v as usize) < n,
                "endpoint out of range"
            );
            assert_ne!(u, v, "self-loops are not supported");
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets.clone();
        let mut edges = vec![
            Edge {
                target: 0,
                weight: 0.0
            };
            acc
        ];
        for &(u, v, w) in edge_list {
            edges[cursor[u as usize]] = Edge {
                target: v,
                weight: w,
            };
            cursor[u as usize] += 1;
            edges[cursor[v as usize]] = Edge {
                target: u,
                weight: w,
            };
            cursor[v as usize] += 1;
        }
        CsrGraph { offsets, edges }
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len() / 2
    }

    /// Degree of `node`.
    #[inline]
    pub fn degree(&self, node: u32) -> usize {
        self.offsets[node as usize + 1] - self.offsets[node as usize]
    }

    /// Adjacency list of `node`.
    #[inline]
    pub fn neighbors(&self, node: u32) -> &[Edge] {
        &self.edges[self.offsets[node as usize]..self.offsets[node as usize + 1]]
    }

    /// Iterates over every undirected edge once, as `(u, v, w)` with `u < v`.
    pub fn undirected_edges(&self) -> impl Iterator<Item = (u32, u32, f32)> + '_ {
        (0..self.num_nodes() as u32).flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .filter(move |e| e.target > u)
                .map(move |e| (u, e.target, e.weight))
        })
    }

    /// `true` when every node is reachable from node 0 (treating the graph as
    /// undirected, which it is).
    ///
    /// The ER parameters in the paper (`p > (1+ε) ln n / n`) make the graphs
    /// connected w.h.p.; tests assert this and the figure harness warns when
    /// a sampled graph is disconnected.
    pub fn is_connected(&self) -> bool {
        let n = self.num_nodes();
        if n == 0 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0u32];
        seen[0] = true;
        let mut count = 1usize;
        while let Some(u) = stack.pop() {
            for e in self.neighbors(u) {
                let t = e.target as usize;
                if !seen[t] {
                    seen[t] = true;
                    count += 1;
                    stack.push(e.target);
                }
            }
        }
        count == n
    }

    /// Approximate resident size in bytes; used by the harness to report
    /// workload scale.
    pub fn memory_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<usize>()
            + self.edges.len() * std::mem::size_of::<Edge>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> CsrGraph {
        CsrGraph::from_undirected_edges(3, &[(0, 1, 1.0), (1, 2, 2.0), (0, 2, 4.0)])
    }

    #[test]
    fn node_and_edge_counts() {
        let g = triangle();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn both_directions_present() {
        let g = triangle();
        assert!(g.neighbors(0).iter().any(|e| e.target == 1));
        assert!(g.neighbors(1).iter().any(|e| e.target == 0));
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.degree(2), 2);
    }

    #[test]
    fn weights_survive_round_trip() {
        let g = triangle();
        let w: f32 = g
            .neighbors(0)
            .iter()
            .find(|e| e.target == 2)
            .unwrap()
            .weight;
        assert_eq!(w, 4.0);
    }

    #[test]
    fn undirected_edges_lists_each_edge_once() {
        let g = triangle();
        let mut edges: Vec<(u32, u32)> = g.undirected_edges().map(|(u, v, _)| (u, v)).collect();
        edges.sort();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn isolated_node_allowed() {
        let g = CsrGraph::from_undirected_edges(3, &[(0, 1, 1.0)]);
        assert_eq!(g.degree(2), 0);
        assert!(!g.is_connected());
    }

    #[test]
    fn connectivity_detects_path() {
        let g = CsrGraph::from_undirected_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]);
        assert!(g.is_connected());
    }

    #[test]
    fn empty_graph_is_connected() {
        let g = CsrGraph::from_undirected_edges(0, &[]);
        assert!(g.is_connected());
        assert_eq!(g.num_nodes(), 0);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_rejected() {
        CsrGraph::from_undirected_edges(2, &[(1, 1, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        CsrGraph::from_undirected_edges(2, &[(0, 5, 1.0)]);
    }

    #[test]
    fn parallel_edges_kept() {
        let g = CsrGraph::from_undirected_edges(2, &[(0, 1, 1.0), (0, 1, 2.0)]);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.num_edges(), 2);
    }
}

#[cfg(test)]
mod stats_tests {
    use super::*;

    #[test]
    fn memory_estimate_scales_with_edges() {
        let small = CsrGraph::from_undirected_edges(4, &[(0, 1, 1.0)]);
        let big_edges: Vec<(u32, u32, f32)> = (0..100).map(|i| (i, i + 1, 1.0)).collect();
        let big = CsrGraph::from_undirected_edges(101, &big_edges);
        assert!(big.memory_bytes() > small.memory_bytes());
    }

    #[test]
    fn degree_sums_to_twice_edges() {
        let edges: Vec<(u32, u32, f32)> = vec![(0, 1, 0.5), (1, 2, 0.5), (0, 2, 0.5), (2, 3, 0.5)];
        let g = CsrGraph::from_undirected_edges(4, &edges);
        let degree_sum: usize = (0..4).map(|v| g.degree(v)).sum();
        assert_eq!(degree_sum, 2 * g.num_edges());
    }
}
