#![warn(missing_docs)]

//! In-tree shim for the subset of `futures-executor` this workspace uses.
//!
//! The build environment is offline, so instead of tokio (or the real
//! `futures` stack) the async ingestion frontend runs on this minimal
//! executor: [`block_on`] drives one future on the calling thread, and
//! [`LocalPool`] is a small multi-task reactor loop — spawn any number of
//! `!Send` futures, then [`LocalPool::run`] polls ready tasks and **parks**
//! the thread between wakes (no polling loop; wakes may arrive from other
//! threads, e.g. a pool worker's lane drain firing a deposited waker).
//!
//! Only the surface the workspace needs is implemented: `block_on`,
//! `LocalPool::{new, spawner, run, run_until, try_run_one}`, and
//! `LocalSpawner::spawn_local`. Swapping back to the registry crate is a
//! one-line change in the workspace manifest.

use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Condvar, Mutex};
use std::task::{Context, Poll, Wake, Waker};

/// Wakeable shared by every task of one pool (and by [`block_on`]): a
/// ready queue plus a condvar the executor thread parks on.
struct Reactor {
    /// Indices of tasks whose wakers fired since the last poll round.
    ready: Mutex<VecDeque<usize>>,
    condvar: Condvar,
}

impl Reactor {
    fn new() -> Arc<Self> {
        Arc::new(Reactor {
            ready: Mutex::new(VecDeque::new()),
            condvar: Condvar::new(),
        })
    }

    fn push_ready(&self, id: usize) {
        let mut q = self.ready.lock().unwrap_or_else(|p| p.into_inner());
        if !q.contains(&id) {
            q.push_back(id);
        }
        drop(q);
        self.condvar.notify_one();
    }

    fn pop_ready(&self) -> Option<usize> {
        self.ready
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .pop_front()
    }

    /// Blocks the executor thread until some waker enqueues a task.
    fn wait_ready(&self) -> usize {
        let mut q = self.ready.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(id) = q.pop_front() {
                return id;
            }
            q = self.condvar.wait(q).unwrap_or_else(|p| p.into_inner());
        }
    }
}

/// One task's waker: enqueues its id on the shared reactor. `Send + Sync`
/// (wakers cross threads); the task futures themselves never leave the
/// executor thread.
struct TaskWaker {
    reactor: Arc<Reactor>,
    id: usize,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.reactor.push_ready(self.id);
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.reactor.push_ready(self.id);
    }
}

/// Runs a future to completion on the calling thread, parking between
/// wakes (never spinning). The entry point for "drive this one async
/// operation synchronously" — e.g. one connection actor per thread.
pub fn block_on<F: Future>(fut: F) -> F::Output {
    let reactor = Reactor::new();
    let waker = Waker::from(Arc::new(TaskWaker {
        reactor: Arc::clone(&reactor),
        id: 0,
    }));
    let mut cx = Context::from_waker(&waker);
    let mut fut = std::pin::pin!(fut);
    loop {
        if let Poll::Ready(out) = fut.as_mut().poll(&mut cx) {
            return out;
        }
        // Consume one wake (there may be several queued; any of them
        // justifies exactly one re-poll).
        let _ = reactor.wait_ready();
    }
}

/// A spawned task: the future, boxed and pinned, or `None` once complete.
type TaskSlot = Option<Pin<Box<dyn Future<Output = ()>>>>;

/// Shared between a [`LocalPool`] and its [`LocalSpawner`]s: futures
/// spawned but not yet adopted by the pool's task list.
type Inbox = std::rc::Rc<std::cell::RefCell<Vec<Pin<Box<dyn Future<Output = ()>>>>>>;

/// A single-threaded pool of futures — the multi-task reactor loop.
///
/// Tasks are spawned through [`LocalPool::spawner`] (before or during a
/// run; a task may spawn further tasks), then [`LocalPool::run`] polls
/// until all are complete. Between wakes the executor thread sleeps on a
/// condvar; wakers are `Send` and may fire from any thread.
pub struct LocalPool {
    reactor: Arc<Reactor>,
    tasks: Vec<TaskSlot>,
    live: usize,
    inbox: Inbox,
}

impl Default for LocalPool {
    fn default() -> Self {
        Self::new()
    }
}

impl LocalPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        LocalPool {
            reactor: Reactor::new(),
            tasks: Vec::new(),
            live: 0,
            inbox: Inbox::default(),
        }
    }

    /// A handle for spawning tasks onto this pool. Cloneable; tasks may
    /// hold one and spawn from inside a poll.
    pub fn spawner(&self) -> LocalSpawner {
        LocalSpawner {
            inbox: Inbox::clone(&self.inbox),
        }
    }

    /// Adopts spawned futures as tasks and marks them ready for their
    /// first poll.
    fn adopt_spawned(&mut self) {
        let mut inbox = self.inbox.borrow_mut();
        for fut in inbox.drain(..) {
            let id = self.tasks.len();
            self.tasks.push(Some(fut));
            self.live += 1;
            self.reactor.push_ready(id);
        }
    }

    /// Polls task `id` once (no-op if it already completed, or if `id` is
    /// not a spawned task at all — e.g. a straggler wake for
    /// [`LocalPool::run_until`]'s main future delivered after it
    /// finished; the `Waker` contract allows wakes at any time).
    fn poll_task(&mut self, id: usize) {
        let Some(mut fut) = self.tasks.get_mut(id).and_then(Option::take) else {
            return; // stale wake of a finished (or foreign) task
        };
        let waker = Waker::from(Arc::new(TaskWaker {
            reactor: Arc::clone(&self.reactor),
            id,
        }));
        match fut.as_mut().poll(&mut Context::from_waker(&waker)) {
            Poll::Ready(()) => self.live -= 1,
            Poll::Pending => self.tasks[id] = Some(fut),
        }
    }

    /// Polls at most one ready task without blocking. Returns `true` if a
    /// task was polled (useful for interleaving with other work).
    pub fn try_run_one(&mut self) -> bool {
        self.adopt_spawned();
        let Some(id) = self.reactor.pop_ready() else {
            return false;
        };
        self.poll_task(id);
        self.adopt_spawned();
        true
    }

    /// Runs every spawned task to completion, parking the thread between
    /// wakes. Returns when no live task remains.
    pub fn run(&mut self) {
        self.adopt_spawned();
        while self.live > 0 {
            let id = self.reactor.wait_ready();
            self.poll_task(id);
            self.adopt_spawned();
        }
    }

    /// Drives `fut` to completion, running spawned tasks whenever the main
    /// future is pending, and returns its output (spawned tasks may still
    /// be incomplete — finish them with [`LocalPool::run`]).
    pub fn run_until<F: Future>(&mut self, fut: F) -> F::Output {
        // The main future gets a dedicated id one past any spawned task's
        // (ids only grow; reserving usize::MAX keeps it disjoint forever).
        const MAIN: usize = usize::MAX;
        let waker = Waker::from(Arc::new(TaskWaker {
            reactor: Arc::clone(&self.reactor),
            id: MAIN,
        }));
        let mut cx = Context::from_waker(&waker);
        let mut fut = std::pin::pin!(fut);
        loop {
            if let Poll::Ready(out) = fut.as_mut().poll(&mut cx) {
                return out;
            }
            loop {
                self.adopt_spawned();
                let id = self.reactor.wait_ready();
                if id == MAIN {
                    break; // re-poll the main future
                }
                self.poll_task(id);
            }
        }
    }
}

/// Spawns futures onto its [`LocalPool`] (single-threaded: neither the
/// spawner nor the futures need to be `Send`).
#[derive(Clone)]
pub struct LocalSpawner {
    inbox: Inbox,
}

impl LocalSpawner {
    /// Queues `fut` as a new task; it is adopted (and first polled) by the
    /// pool's next run/turn.
    pub fn spawn_local<F: Future<Output = ()> + 'static>(&self, fut: F) {
        self.inbox.borrow_mut().push(Box::pin(fut));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use std::rc::Rc;
    use std::sync::atomic::{AtomicBool, Ordering};

    #[test]
    fn block_on_ready_future() {
        assert_eq!(block_on(async { 21 * 2 }), 42);
    }

    /// Pends once, waking itself from another thread after a delay — the
    /// executor must park, not spin, and still complete.
    struct CrossThreadWake {
        fired: Arc<AtomicBool>,
        armed: bool,
    }

    impl Future for CrossThreadWake {
        type Output = ();
        fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
            if self.fired.load(Ordering::Acquire) {
                return Poll::Ready(());
            }
            if !self.armed {
                self.armed = true;
                let fired = Arc::clone(&self.fired);
                let waker = cx.waker().clone();
                std::thread::spawn(move || {
                    std::thread::sleep(std::time::Duration::from_millis(10));
                    fired.store(true, Ordering::Release);
                    waker.wake();
                });
            }
            Poll::Pending
        }
    }

    #[test]
    fn block_on_parks_until_cross_thread_wake() {
        block_on(CrossThreadWake {
            fired: Arc::new(AtomicBool::new(false)),
            armed: false,
        });
    }

    #[test]
    fn local_pool_runs_many_tasks_and_late_spawns() {
        let mut pool = LocalPool::new();
        let spawner = pool.spawner();
        let count = Rc::new(Cell::new(0u32));
        for _ in 0..10 {
            let count = Rc::clone(&count);
            let nested = spawner.clone();
            spawner.spawn_local(async move {
                count.set(count.get() + 1);
                // A task spawning a task mid-run must also complete.
                let count = Rc::clone(&count);
                nested.spawn_local(async move {
                    count.set(count.get() + 1);
                });
            });
        }
        pool.run();
        assert_eq!(count.get(), 20);
    }

    #[test]
    fn local_pool_tasks_park_and_wake_across_threads() {
        let mut pool = LocalPool::new();
        let spawner = pool.spawner();
        let done = Rc::new(Cell::new(0u32));
        for _ in 0..4 {
            let done = Rc::clone(&done);
            spawner.spawn_local(async move {
                CrossThreadWake {
                    fired: Arc::new(AtomicBool::new(false)),
                    armed: false,
                }
                .await;
                done.set(done.get() + 1);
            });
        }
        pool.run();
        assert_eq!(done.get(), 4);
    }

    #[test]
    fn run_until_returns_main_output_with_side_tasks() {
        let mut pool = LocalPool::new();
        let spawner = pool.spawner();
        let side = Rc::new(Cell::new(false));
        {
            let side = Rc::clone(&side);
            spawner.spawn_local(async move { side.set(true) });
        }
        let out = pool.run_until(async {
            CrossThreadWake {
                fired: Arc::new(AtomicBool::new(false)),
                armed: false,
            }
            .await;
            7
        });
        assert_eq!(out, 7);
        assert!(side.get(), "side task runs while main pends");
    }

    #[test]
    fn straggler_wake_for_finished_main_future_is_harmless() {
        // A future may fire its waker after returning Ready (the Waker
        // contract allows wakes at any time). run_until's main id must
        // not break a later run()/try_run_one().
        let mut pool = LocalPool::new();
        let stash: Rc<Cell<Option<Waker>>> = Rc::new(Cell::new(None));
        struct StashWaker(Rc<Cell<Option<Waker>>>);
        impl Future for StashWaker {
            type Output = ();
            fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
                self.0.set(Some(cx.waker().clone()));
                Poll::Ready(())
            }
        }
        pool.run_until(StashWaker(Rc::clone(&stash)));
        stash.take().expect("waker stashed").wake(); // straggler
        let spawner = pool.spawner();
        let ran = Rc::new(Cell::new(false));
        {
            let ran = Rc::clone(&ran);
            spawner.spawn_local(async move { ran.set(true) });
        }
        pool.run(); // must not panic on the foreign ready id
        assert!(ran.get());
    }

    #[test]
    fn try_run_one_is_non_blocking() {
        let mut pool = LocalPool::new();
        assert!(!pool.try_run_one(), "empty pool has nothing ready");
        let spawner = pool.spawner();
        let ran = Rc::new(Cell::new(false));
        {
            let ran = Rc::clone(&ran);
            spawner.spawn_local(async move { ran.set(true) });
        }
        assert!(pool.try_run_one());
        assert!(ran.get());
        assert!(!pool.try_run_one());
    }
}
