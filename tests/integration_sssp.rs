//! Cross-crate integration: parallel SSSP over every data structure must
//! reproduce sequential Dijkstra exactly, across a grid of (structure, P, k)
//! configurations and graph families — the correctness backbone behind
//! Figures 4 and 5.

use priosched::core::PoolKind;
use priosched::graph::{bellman_ford, dijkstra, erdos_renyi, CsrGraph, ErdosRenyiConfig};
use priosched::sim::{simulate_sssp, SimConfig};
use priosched::sssp::{run_sssp_kind, run_sssp_lockstep_kind, SsspConfig};

#[test]
fn grid_of_structures_places_and_k() {
    let g = erdos_renyi(&ErdosRenyiConfig {
        n: 180,
        p: 0.08,
        seed: 501,
    });
    let expect = dijkstra(&g, 0).dist;
    for kind in PoolKind::ALL {
        for places in [1usize, 2, 4] {
            for k in [1usize, 16, 512] {
                let cfg = SsspConfig::new(places, k);
                let res = run_sssp_kind(kind, &g, 0, &cfg);
                assert_eq!(res.dist, expect, "{kind} P={places} k={k}");
            }
        }
    }
}

#[test]
fn lockstep_and_threaded_agree_with_each_other() {
    let g = erdos_renyi(&ErdosRenyiConfig {
        n: 150,
        p: 0.1,
        seed: 502,
    });
    for kind in PoolKind::PAPER {
        let cfg = SsspConfig::new(4, 64);
        let threaded = run_sssp_kind(kind, &g, 0, &cfg);
        let lockstep = run_sssp_lockstep_kind(kind, &g, 0, &cfg);
        assert_eq!(threaded.dist, lockstep.dist, "{kind}");
    }
}

#[test]
fn three_independent_solvers_agree() {
    // Dijkstra (pq-based), Bellman–Ford (sweep-based), the parallel
    // scheduler (hybrid), and the phase simulator all compute the same
    // distances on the same graph.
    let g = erdos_renyi(&ErdosRenyiConfig {
        n: 140,
        p: 0.09,
        seed: 503,
    });
    let a = dijkstra(&g, 3).dist;
    let b = bellman_ford(&g, 3);
    let c = run_sssp_kind(PoolKind::Hybrid, &g, 3, &SsspConfig::new(3, 32)).dist;
    let d = simulate_sssp(
        &g,
        3,
        &SimConfig {
            p: 8,
            rho: 64,
            seed: 1,
        },
    )
    .dist;
    assert_eq!(a, b);
    assert_eq!(a, c);
    assert_eq!(a, d);
}

#[test]
fn sparse_and_dense_graph_families() {
    for (n, p, seed) in [(300usize, 0.03f64, 504u64), (80, 0.6, 505), (40, 1.0, 506)] {
        let g = erdos_renyi(&ErdosRenyiConfig { n, p, seed });
        let expect = dijkstra(&g, 0).dist;
        for kind in PoolKind::PAPER {
            let cfg = SsspConfig::new(2, 8).kmax(64);
            let res = run_sssp_kind(kind, &g, 0, &cfg);
            assert_eq!(res.dist, expect, "{kind} n={n} p={p}");
        }
    }
}

#[test]
fn pathological_graphs() {
    // Long path: maximal dependency depth.
    let path: Vec<(u32, u32, f32)> = (0..199).map(|i| (i, i + 1, 0.5)).collect();
    // Star: maximal fanout from the source.
    let star: Vec<(u32, u32, f32)> = (1..200).map(|i| (0, i, 1.0 / i as f32)).collect();
    for (name, n, edges) in [("path", 200usize, path), ("star", 200, star)] {
        let g = CsrGraph::from_undirected_edges(n, &edges);
        let expect = dijkstra(&g, 0).dist;
        for kind in PoolKind::PAPER {
            let cfg = SsspConfig::new(3, 4).kmax(64);
            let res = run_sssp_kind(kind, &g, 0, &cfg);
            assert_eq!(res.dist, expect, "{kind} on {name}");
        }
    }
}

#[test]
fn useless_work_ordering_between_structures_holds_deterministically() {
    // The paper's headline (Fig. 4 right): work-stealing performs the most
    // useless work; the k-structures bound it. Deterministic via lockstep.
    let g = erdos_renyi(&ErdosRenyiConfig {
        n: 400,
        p: 0.5,
        seed: 507,
    });
    let cfg = SsspConfig::new(32, 64);
    let ws = run_sssp_lockstep_kind(PoolKind::WorkStealing, &g, 0, &cfg).relaxed;
    let ce = run_sssp_lockstep_kind(PoolKind::Centralized, &g, 0, &cfg).relaxed;
    let hy = run_sssp_lockstep_kind(PoolKind::Hybrid, &g, 0, &cfg).relaxed;
    assert!(ws > ce, "ws={ws} centralized={ce}");
    assert!(ws > hy, "ws={ws} hybrid={hy}");
}

#[test]
fn simulator_total_relaxations_bounded_by_phases() {
    let g = erdos_renyi(&ErdosRenyiConfig {
        n: 250,
        p: 0.06,
        seed: 508,
    });
    let res = simulate_sssp(
        &g,
        0,
        &SimConfig {
            p: 10,
            rho: 32,
            seed: 2,
        },
    );
    assert!(
        res.total_relaxed >= 250 - 5,
        "most nodes relaxed at least once"
    );
    assert!(res.total_relaxed <= 10 * res.phases.len());
    assert_eq!(
        res.total_useless,
        res.phases
            .iter()
            .map(|ph| ph.relaxed - ph.settled)
            .sum::<usize>()
    );
}
