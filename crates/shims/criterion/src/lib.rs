//! In-tree shim for the subset of `criterion` used by this workspace.
//!
//! Offline build: the real crate cannot be fetched, so this implements a
//! compact wall-clock harness with the same surface — `criterion_group!`,
//! `criterion_main!`, [`Criterion::benchmark_group`], `bench_function`,
//! `bench_with_input`, [`Throughput`], [`BenchmarkId`], [`black_box`].
//!
//! Differences from real criterion, deliberately accepted:
//!
//! * mean ± min/max over `sample_size` samples instead of full statistics
//!   (no outlier classification, no HTML reports);
//! * results print as one line per benchmark and can additionally be
//!   dumped as JSON to the path in `CRITERION_JSON_OUT` (used to record
//!   committed baselines such as `BENCH_batch.json`);
//! * a single positional CLI argument acts as a substring filter, and
//!   `--bench`/`--test`-style flags from cargo are ignored.

use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One finished measurement, kept for the JSON dump.
#[derive(Clone, Debug)]
pub struct Record {
    /// Benchmark group name.
    pub group: String,
    /// Benchmark id within the group.
    pub id: String,
    /// Mean nanoseconds per iteration.
    pub mean_ns: f64,
    /// Fastest sample (ns/iter).
    pub min_ns: f64,
    /// Slowest sample (ns/iter).
    pub max_ns: f64,
    /// Elements per iteration when a throughput was configured.
    pub elements: Option<u64>,
    /// Median per-operation latency, when the benchmark recorded a
    /// per-op histogram (see [`BenchmarkGroup::report_with_percentiles`]).
    pub p50_ns: Option<f64>,
    /// 99th-percentile per-operation latency.
    pub p99_ns: Option<f64>,
    /// 99.9th-percentile per-operation latency.
    pub p999_ns: Option<f64>,
}

fn records() -> &'static Mutex<Vec<Record>> {
    static RECORDS: OnceLock<Mutex<Vec<Record>>> = OnceLock::new();
    RECORDS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Throughput hint for per-element rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark id: function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Id from a function name and parameter (rendered as `name/param`).
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Id from a parameter only.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Reads the CLI: flags are ignored, a positional argument becomes a
    /// substring filter on `group/id`.
    pub fn configure_from_args(mut self) -> Self {
        for arg in std::env::args().skip(1) {
            if arg.starts_with('-') {
                continue; // cargo-bench plumbing (--bench etc.)
            }
            self.filter = Some(arg);
        }
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            throughput: None,
            filter: self.filter.clone(),
        }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    filter: Option<String>,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Wall-clock budget for the measurement phase of each benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Declares how much work one iteration performs.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        self.run(&id.to_string(), &mut |b| f(b));
        self
    }

    /// Runs one parameterized benchmark.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.run(&id.to_string(), &mut |b| f(b, input));
        self
    }

    /// Closes the group (parity with real criterion; no-op here).
    pub fn finish(&mut self) {}

    /// Reports a measurement the benchmark took itself — per-operation
    /// latency percentiles from an HDR-style histogram alongside the
    /// aggregate stats. Real criterion has no such API; benches that
    /// need tail latency sample each op and hand the quantiles in here.
    /// Respects the CLI filter like any other benchmark in the group.
    #[allow(clippy::too_many_arguments)]
    pub fn report_with_percentiles(
        &mut self,
        id: impl std::fmt::Display,
        mean_ns: f64,
        min_ns: f64,
        max_ns: f64,
        p50_ns: f64,
        p99_ns: f64,
        p999_ns: f64,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.filter {
            if !full.contains(filter.as_str()) {
                return self;
            }
        }
        println!(
            "bench {full:<55} {mean_ns:>12.1} ns/op   (p50 {p50_ns:.0}, p99 {p99_ns:.0}, \
             p999 {p999_ns:.0}, max {max_ns:.0})"
        );
        records().lock().unwrap().push(Record {
            group: self.name.clone(),
            id: id.to_string(),
            mean_ns,
            min_ns,
            max_ns,
            elements: match self.throughput {
                Some(Throughput::Elements(n)) => Some(n),
                _ => None,
            },
            p50_ns: Some(p50_ns),
            p99_ns: Some(p99_ns),
            p999_ns: Some(p999_ns),
        });
        self
    }

    fn run(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        // Warm-up + calibration: find an iteration count per sample so one
        // sample costs measurement_time / sample_size.
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let per_iter =
            bencher.elapsed.max(Duration::from_nanos(1)).as_secs_f64() / bencher.iters as f64;
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = ((budget / per_iter) as u64).clamp(1, 1_000_000_000);

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters: iters_per_sample,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples.push(b.elapsed.as_secs_f64() * 1e9 / b.iters as f64);
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(0.0, f64::max);
        let elements = match self.throughput {
            Some(Throughput::Elements(n)) => Some(n),
            _ => None,
        };
        let rate = elements
            .map(|n| format!("  {:>10.1} Melem/s", n as f64 / mean * 1e3))
            .unwrap_or_default();
        println!("bench {full:<55} {mean:>12.1} ns/iter (min {min:.1}, max {max:.1}){rate}");
        records().lock().unwrap().push(Record {
            group: self.name.clone(),
            id: id.to_string(),
            mean_ns: mean,
            min_ns: min,
            max_ns: max,
            elements,
            p50_ns: None,
            p99_ns: None,
            p999_ns: None,
        });
    }
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over this sample's iteration count.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Writes collected records as JSON to `CRITERION_JSON_OUT` (if set).
/// Called by `criterion_main!` after all groups ran.
pub fn finalize() {
    let Ok(path) = std::env::var("CRITERION_JSON_OUT") else {
        return;
    };
    let records = records().lock().unwrap();
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        let sep = if i + 1 == records.len() { "" } else { "," };
        // Percentile fields appear only when the benchmark recorded a
        // per-op histogram, keeping older baseline files schema-stable.
        let percentiles = match (r.p50_ns, r.p99_ns, r.p999_ns) {
            (Some(p50), Some(p99), Some(p999)) => {
                format!(", \"p50_ns\": {p50:.1}, \"p99_ns\": {p99:.1}, \"p999_ns\": {p999:.1}")
            }
            _ => String::new(),
        };
        out.push_str(&format!(
            "  {{\"group\": \"{}\", \"id\": \"{}\", \"mean_ns\": {:.1}, \
             \"min_ns\": {:.1}, \"max_ns\": {:.1}, \"elements\": {}{percentiles}}}{sep}\n",
            r.group,
            r.id,
            r.mean_ns,
            r.min_ns,
            r.max_ns,
            r.elements
                .map(|n| n.to_string())
                .unwrap_or_else(|| "null".into()),
        ));
    }
    out.push_str("]\n");
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("criterion shim: cannot write {path}: {e}");
    }
}

/// Bundles benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Expands to `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_records_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim_self_test");
        g.sample_size(3);
        g.measurement_time(Duration::from_millis(30));
        g.throughput(Throughput::Elements(10));
        g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        g.bench_with_input(BenchmarkId::new("param", 4), &4u64, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.finish();
        let recs = records().lock().unwrap();
        assert!(recs
            .iter()
            .any(|r| r.group == "shim_self_test" && r.id == "noop" && r.mean_ns >= 0.0));
        assert!(recs.iter().any(|r| r.id == "param/4"));
        assert!(
            recs.iter()
                .filter(|r| r.group == "shim_self_test")
                .all(|r| r.p50_ns.is_none()),
            "plain benchmarks must not invent percentiles"
        );
    }

    #[test]
    fn percentile_report_records_quantiles() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim_percentiles");
        g.throughput(Throughput::Elements(100));
        g.report_with_percentiles("oplat/p2", 120.0, 80.0, 9_000.0, 110.0, 450.0, 8_000.0);
        g.finish();
        let recs = records().lock().unwrap();
        let r = recs
            .iter()
            .find(|r| r.group == "shim_percentiles" && r.id == "oplat/p2")
            .expect("percentile record present");
        assert_eq!(r.p50_ns, Some(110.0));
        assert_eq!(r.p99_ns, Some(450.0));
        assert_eq!(r.p999_ns, Some(8_000.0));
        assert_eq!(r.elements, Some(100));
    }

    #[test]
    fn percentile_report_respects_filter() {
        let mut c = Criterion {
            filter: Some("no_such_bench".into()),
        };
        let mut g = c.benchmark_group("shim_filtered");
        g.report_with_percentiles("skipped", 1.0, 1.0, 1.0, 1.0, 1.0, 1.0);
        g.finish();
        let recs = records().lock().unwrap();
        assert!(
            !recs.iter().any(|r| r.group == "shim_filtered"),
            "filtered-out percentile reports must not record"
        );
    }
}
