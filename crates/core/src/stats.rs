//! Lightweight instrumentation counters.
//!
//! Every place handle keeps plain (non-atomic) counters on its hot path and
//! folds them into a [`PlaceStats`] snapshot on request; the scheduler
//! aggregates snapshots across places into the run statistics reported by
//! the figure harness (nodes relaxed, dead tasks, steal/spy activity, …).

/// Per-place operation counters.
///
/// All fields count events observed by one place (thread). Aggregate with
/// [`PlaceStats::merge`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlaceStats {
    /// Tasks pushed by this place.
    pub pushes: u64,
    /// Tasks successfully popped (and owned) by this place.
    pub pops: u64,
    /// `pop` calls that returned nothing.
    pub failed_pops: u64,
    /// Take attempts that lost the CAS/TAS race (dead references noticed).
    pub stale_refs: u64,
    /// Steal-half operations that obtained at least one task (work-stealing).
    pub steals: u64,
    /// Spy operations that found at least one reference (hybrid).
    pub spies: u64,
    /// Local lists published to the global list (hybrid).
    pub publishes: u64,
    /// Items taken through the random fallback probe (centralized).
    pub probe_hits: u64,
    /// Global-array/global-list entries ingested into the local queue.
    pub ingested: u64,
}

impl PlaceStats {
    /// Element-wise sum.
    pub fn merge(&mut self, other: &PlaceStats) {
        self.pushes += other.pushes;
        self.pops += other.pops;
        self.failed_pops += other.failed_pops;
        self.stale_refs += other.stale_refs;
        self.steals += other.steals;
        self.spies += other.spies;
        self.publishes += other.publishes;
        self.probe_hits += other.probe_hits;
        self.ingested += other.ingested;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_fields() {
        let mut a = PlaceStats {
            pushes: 1,
            pops: 2,
            failed_pops: 3,
            stale_refs: 4,
            steals: 5,
            spies: 6,
            publishes: 7,
            probe_hits: 8,
            ingested: 9,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.pushes, 2);
        assert_eq!(a.pops, 4);
        assert_eq!(a.ingested, 18);
    }
}
