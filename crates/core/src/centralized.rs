//! Centralized k-priority data structure (§3.2, §4.1, Listings 1–2).
//!
//! One global, ρ-relaxed priority order over all tasks in the system:
//! a `pop` may ignore at most the **k newest** items (ρ = k), where "newest"
//! means: fewer than `k` items were pushed after them. Everything older is
//! globally visible and the best visible task wins.
//!
//! # Structure
//!
//! * A global, grow-only array of item slots ([`crate::garray::GlobalArray`])
//!   shared by all places, plus a global `tail` index. Items are placed by
//!   CAS into a random free slot of the window `[tail, tail + k)`; when the
//!   window is full, `tail` advances by `k` (Listing 1). A task therefore
//!   sits at most `k` positions away from its sequentially consistent
//!   position.
//! * Per place: a sequential priority queue of [`ItemRef`]s. Each place
//!   scans the global array from its private `head` up to `tail` and ingests
//!   references to all items it has not seen (skipping its own, which were
//!   inserted at push time), then repeatedly takes its local best via the
//!   tag CAS (Listing 2).
//! * When the local queue is empty, up to `k` fresh tasks may still sit in
//!   `[tail, tail + kmax)`; a single random probe may take one of them —
//!   pops are allowed to fail spuriously (§2.1).
//!
//! # Lock-freedom
//!
//! Push: a full window implies `k` successful pushes by others; a failed
//! slot CAS implies another push succeeded; the tail CAS fails only if
//! another thread advanced it. Pop: the scan is bounded by items other
//! threads pushed; a failed take CAS means another thread took the task.
//! This mirrors the Theorem 1/2 arguments.

use crate::garray::{GlobalArray, SegmentCursor};
use crate::item::{Item, ItemCache, ItemPool, ItemRef};
use crate::pool::{PoolHandle, TaskPool};
use crate::stats::PlaceStats;
use crate::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use crate::util::XorShift64;
use crossbeam_utils::CachePadded;
use priosched_pq::{BinaryHeap, SequentialPriorityQueue};
use std::sync::Arc;

/// Default maximum per-task `k` (§4.1.2: "We chose kmax = 512 for our
/// implementation").
pub const DEFAULT_KMAX: u32 = 512;

/// Placement policy for push (Listing 1 line 9 uses a random offset;
/// `Linear` exists for the ablation bench that quantifies why).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Placement {
    /// Paper behaviour: probe the k-window from a random offset —
    /// "Randomization is used to improve scalability" (§4.1).
    Random,
    /// Ablation: always probe from the window start; every pusher contends
    /// on the same slot.
    Linear,
}

/// The shared (global) component of the centralized k-priority structure.
///
/// Create with [`CentralizedKPriority::new`], wrap in an `Arc`, then create
/// one [`CentralizedHandle`] per place via [`crate::pool::TaskPool::handle`].
pub struct CentralizedKPriority<T: Send + 'static> {
    nplaces: usize,
    kmax: u32,
    placement: Placement,
    tail: CachePadded<AtomicU64>,
    array: GlobalArray<T>,
    pool: ItemPool<T>,
    handle_live: Box<[AtomicBool]>,
}

impl<T: Send + 'static> CentralizedKPriority<T> {
    /// Creates a structure for `nplaces` places with the given `kmax`
    /// (upper bound for per-task `k`; also the probe range of pop).
    ///
    /// # Panics
    /// Panics if `nplaces == 0` or `kmax == 0`.
    pub fn new(nplaces: usize, kmax: u32) -> Self {
        Self::with_placement(nplaces, kmax, Placement::Random)
    }

    /// As [`CentralizedKPriority::new`] with an explicit placement policy
    /// (the `Linear` variant exists for ablation benchmarks).
    pub fn with_placement(nplaces: usize, kmax: u32, placement: Placement) -> Self {
        assert!(nplaces > 0, "need at least one place");
        assert!(kmax > 0, "kmax must be positive");
        CentralizedKPriority {
            nplaces,
            kmax,
            placement,
            tail: CachePadded::new(AtomicU64::new(0)),
            array: GlobalArray::new(),
            pool: ItemPool::new(),
            handle_live: (0..nplaces).map(|_| AtomicBool::new(false)).collect(),
        }
    }

    /// Paper configuration: `kmax = 512`.
    pub fn with_defaults(nplaces: usize) -> Self {
        Self::new(nplaces, DEFAULT_KMAX)
    }

    /// Current tail index (diagnostics/tests).
    pub fn tail(&self) -> u64 {
        self.tail.load(Ordering::Acquire)
    }

    /// Upper bound on per-task `k`.
    pub fn kmax(&self) -> u32 {
        self.kmax
    }

    /// Number of global-array segments currently allocated.
    pub fn segments(&self) -> usize {
        self.array.segment_count()
    }

    /// Frees exhausted leading segments of the global array. Returns the
    /// number of segments freed.
    ///
    /// A segment is exhausted when it lies entirely below the tail and
    /// every slot's item has been taken (its tag no longer matches the
    /// slot position — a recycled tag counts as taken, which is exactly
    /// the ABA-safe reading). This is the quiescent-point realization of
    /// §4.1.3's reclamation scheme; see DESIGN.md §4.
    ///
    /// # Panics
    /// Panics if any place handle is live: reclamation requires
    /// quiescence (e.g. call it between scheduler runs).
    pub fn reclaim(&self) -> usize {
        assert!(
            self.handle_live.iter().all(|h| !h.load(Ordering::Acquire)),
            "reclaim requires quiescence (no live handles)"
        );
        let tail = self.tail.load(Ordering::Acquire);
        // SAFETY: the handle-liveness check above guarantees exclusivity;
        // new handles start their scan at the post-reclaim base.
        let (freed, _new_base) = unsafe {
            self.array.reclaim_prefix(|base, slots| {
                if base + slots.len() as u64 > tail {
                    return false; // still inside the active window
                }
                slots.iter().enumerate().all(|(i, slot)| {
                    let p = slot.load(Ordering::Acquire);
                    // Below the tail every slot is filled; a live item
                    // still carries its slot position as tag. (We are
                    // already inside the reclaim_prefix unsafe region.)
                    !p.is_null() && (*p).tag.load(Ordering::Acquire) != base + i as u64
                })
            })
        };
        freed
    }
}

impl<T: Send + 'static> TaskPool<T> for CentralizedKPriority<T> {
    type Handle = CentralizedHandle<T>;

    fn num_places(&self) -> usize {
        self.nplaces
    }

    fn handle(self: &Arc<Self>, place: usize) -> CentralizedHandle<T> {
        assert!(place < self.nplaces, "place {place} out of range");
        assert!(
            !self.handle_live[place].swap(true, Ordering::AcqRel),
            "place {place} already has a live handle"
        );
        CentralizedHandle {
            place: place as u32,
            // Start scanning at the first retained slot (0 unless segments
            // were reclaimed; everything below was fully taken).
            head: self.array.base_index(),
            // Items below the current tail that carry our place id were
            // pushed by a previous handle incarnation (e.g. an earlier run
            // on the same pool); ingest them like foreign items so they are
            // not orphaned.
            adopt_own_below: self.tail.load(Ordering::Acquire),
            scan_cursor: SegmentCursor::default(),
            push_cursor: SegmentCursor::default(),
            probe_cursor: SegmentCursor::default(),
            pq: BinaryHeap::with_capacity(256),
            cache: ItemCache::new(),
            rng: XorShift64::new(0xC3A5_0000 ^ place as u64),
            stats: PlaceStats::default(),
            shared: Arc::clone(self),
        }
    }
}

/// One place's view of the centralized structure.
pub struct CentralizedHandle<T: Send + 'static> {
    shared: Arc<CentralizedKPriority<T>>,
    place: u32,
    /// Private index into the global array: everything below it has been
    /// ingested into `pq` (Listing 2: "Each place maintains its own head
    /// index into the global array").
    head: u64,
    adopt_own_below: u64,
    scan_cursor: SegmentCursor<T>,
    push_cursor: SegmentCursor<T>,
    probe_cursor: SegmentCursor<T>,
    pq: BinaryHeap<ItemRef<T>>,
    /// Place-local stash of free items; refilled/flushed in batches so
    /// the shared free list is touched once per batch, not per task.
    cache: ItemCache<T>,
    rng: XorShift64,
    stats: PlaceStats,
}

// SAFETY: the handle owns its place-local state exclusively; shared state is
// reached only through atomics; item/segment pointers outlive the handle via
// the Arc.
unsafe impl<T: Send + 'static> Send for CentralizedHandle<T> {}

impl<T: Send + 'static> CentralizedHandle<T> {
    /// Ingests `[head, tail)` into the local priority queue; returns the
    /// tail value scanned to.
    fn ingest(&mut self) -> u64 {
        let tail = self.shared.tail.load(Ordering::Acquire);
        while self.head < tail {
            let pos = self.head;
            // Invariant: slots below tail are always non-null (the tail only
            // advances over full windows) — see garray module docs.
            let slot = self
                .shared
                .array
                .slot(pos, &mut self.scan_cursor)
                .expect("segment below tail must exist");
            let ptr = slot.load(Ordering::Acquire);
            debug_assert!(!ptr.is_null(), "slot below tail must be filled");
            if !ptr.is_null() {
                // SAFETY: items are pool-owned and outlive the handle.
                let item = unsafe { &*ptr };
                let foreign =
                    item.place.load(Ordering::Relaxed) != self.place || pos < self.adopt_own_below;
                if foreign && item.is_live_at(pos) {
                    self.pq.push(ItemRef {
                        prio: item.prio.load(Ordering::Relaxed),
                        tag: pos,
                        ptr,
                    });
                    self.stats.ingested += 1;
                }
            }
            self.head += 1;
        }
        tail
    }

    /// Random probe into `[tail, tail + kmax)` for the case where the local
    /// queue is empty (Listing 2 lines 21–30).
    fn probe(&mut self, tail: u64) -> Option<(u64, T)> {
        let offset = self.rng.below(self.shared.kmax as u64);
        let pos = tail + offset;
        let slot = self.shared.array.slot(pos, &mut self.probe_cursor)?;
        let ptr = slot.load(Ordering::Acquire);
        if ptr.is_null() {
            return None;
        }
        // SAFETY: pool-owned item.
        let item = unsafe { &*ptr };
        // Eligibility: the item must still be inside its own k-window
        // relative to the tail we read, so taking it ignores no task beyond
        // what its own relaxation bound permits (see DESIGN.md §3.2 for why
        // we read Listing 2's guard this way).
        if (item.k.load(Ordering::Relaxed) as u64) <= offset {
            return None;
        }
        let task = item.try_take(pos)?;
        // Between the take and the release the item is exclusively ours,
        // so this priority read is exact (set at init, untouched since).
        let prio = item.prio.load(Ordering::Relaxed);
        // SAFETY: unique take winner returns the item.
        unsafe { self.cache.release(&self.shared.pool, ptr) };
        self.stats.probe_hits += 1;
        Some((prio, task))
    }

    /// Places one initialized item into the k-window, maintaining the
    /// caller's cached tail in `t` (Listing 1's loop with the tail read
    /// hoisted; see `push_batch` for why a stale tail is sound). Returns
    /// the reference to enqueue locally — scalar `push` inserts it
    /// directly, `push_batch` defers to one bulk repair.
    fn place_item(&mut self, ptr: *const Item<T>, prio: u64, k: u64, t: &mut u64) -> ItemRef<T> {
        // SAFETY: the item is exclusively ours until the publishing CAS.
        let item = unsafe { &*ptr };
        loop {
            let offset = match self.shared.placement {
                Placement::Random => self.rng.below(k),
                Placement::Linear => 0,
            };
            for i in 0..k {
                let pos = *t + (offset + i) % k;
                let slot = self.shared.array.slot_or_grow(pos, &mut self.push_cursor);
                if !slot.load(Ordering::Acquire).is_null() {
                    continue; // taken by another item
                }
                // Tag with the target position before the publishing CAS
                // (Listing 1: "We store pos in the tag field to omit the ABA
                // problem"); the Release store also publishes the payload.
                item.tag.store(pos, Ordering::Release);
                if slot
                    .compare_exchange(
                        std::ptr::null_mut(),
                        ptr as *mut Item<T>,
                        Ordering::AcqRel,
                        Ordering::Relaxed,
                    )
                    .is_ok()
                {
                    self.stats.pushes += 1;
                    return ItemRef {
                        prio,
                        tag: pos,
                        ptr,
                    };
                }
            }
            // Window full: advance the tail. "One thread will succeed, no
            // need for checking which" (Listing 1).
            let _ =
                self.shared
                    .tail
                    .compare_exchange(*t, *t + k, Ordering::AcqRel, Ordering::Relaxed);
            *t = self.shared.tail.load(Ordering::Acquire);
        }
    }
}

impl<T: Send + 'static> PoolHandle<T> for CentralizedHandle<T> {
    /// Listing 1. `k` is clamped to `[1, kmax]`: a window of size 1 is the
    /// strictest placement the array supports (`k = 0` degenerates to it).
    fn push(&mut self, prio: u64, k: usize, task: T) {
        let k = (k as u64).clamp(1, self.shared.kmax as u64);
        let ptr = self.cache.acquire(&self.shared.pool);
        // SAFETY: freshly acquired item, exclusively ours until published.
        unsafe { (*ptr).init(self.place, k as u32, prio, task) };
        let mut t = self.shared.tail.load(Ordering::Acquire);
        let r = self.place_item(ptr, prio, k, &mut t);
        self.pq.push(r);
    }

    /// Listing 2.
    fn pop_entry(&mut self) -> Option<(u64, T)> {
        loop {
            let scanned_to = self.ingest();
            while let Some(r) = self.pq.pop() {
                // SAFETY: pool-owned item.
                let item = unsafe { &*r.ptr };
                if item.is_live_at(r.tag) {
                    if let Some(task) = item.try_take(r.tag) {
                        // SAFETY: unique take winner returns the item.
                        unsafe { self.cache.release(&self.shared.pool, r.ptr) };
                        self.stats.pops += 1;
                        return Some((r.prio, task));
                    }
                }
                // Reference was dead (taken elsewhere / recycled): recheck
                // the global array for new tasks before trying again.
                self.stats.stale_refs += 1;
                if self.shared.tail.load(Ordering::Acquire) != scanned_to {
                    self.ingest();
                }
            }
            // Local queue drained. If the tail moved since our scan there
            // may be unseen items below it: rescan rather than probing over
            // their heads.
            let tail = self.shared.tail.load(Ordering::Acquire);
            if tail != scanned_to {
                continue;
            }
            if let Some(entry) = self.probe(tail) {
                self.stats.pops += 1;
                return Some(entry);
            }
            self.stats.failed_pops += 1;
            return None;
        }
    }

    /// Batch push (Listing 1 amortized): one item-pool refill for the
    /// whole batch, one tail read + one random offset per *window pass*
    /// (≤ k placements) instead of per task, and a single bulk repair of
    /// the local reference queue at the end.
    ///
    /// Relaxation accounting is unchanged: every element is placed inside
    /// `[tail, tail + k)` exactly as a scalar push would place it, so each
    /// batch element individually obeys the ρ = k window. Using a cached
    /// (possibly stale) tail is sound because slots below the real tail
    /// are never null — a successful slot CAS therefore always lands at a
    /// position ≥ the current tail and < cached-tail + k ≤ current + k.
    fn push_batch(&mut self, k: usize, batch: &mut Vec<(u64, T)>) {
        if batch.is_empty() {
            return;
        }
        let n = batch.len();
        let k = (k as u64).clamp(1, self.shared.kmax as u64);
        // One shared-free-list interaction for the whole batch.
        self.cache.prefetch(&self.shared.pool, n);
        let mut t = self.shared.tail.load(Ordering::Acquire);
        let mut refs = Vec::with_capacity(n);
        for (prio, task) in batch.drain(..) {
            let ptr = self.cache.acquire(&self.shared.pool);
            // SAFETY: freshly acquired item, exclusively ours until placed.
            unsafe { (*ptr).init(self.place, k as u32, prio, task) };
            refs.push(self.place_item(ptr, prio, k, &mut t));
        }
        self.pq.extend_batch(refs);
    }

    /// Batch pop (Listing 2 amortized): one global-array scan serves up to
    /// `max` takes, and the taken items are recycled through the
    /// place-local cache (one free-list CAS per flush, not per item).
    ///
    /// Each take individually honours ρ = k at the moment the batch
    /// scanned the array; tasks pushed concurrently while the batch drains
    /// are "newer than the batch" and may be served by the next call —
    /// the same window a scalar pop exposes between its scan and its take.
    fn try_pop_batch(&mut self, out: &mut Vec<T>, max: usize) -> usize {
        if max == 0 {
            return 0;
        }
        let mut got = 0;
        loop {
            let scanned_to = self.ingest();
            while got < max {
                let Some(r) = self.pq.pop() else { break };
                // SAFETY: pool-owned item.
                let item = unsafe { &*r.ptr };
                if item.is_live_at(r.tag) {
                    if let Some(task) = item.try_take(r.tag) {
                        // SAFETY: unique take winner returns the item.
                        unsafe { self.cache.release(&self.shared.pool, r.ptr) };
                        out.push(task);
                        got += 1;
                        continue;
                    }
                }
                self.stats.stale_refs += 1;
                if self.shared.tail.load(Ordering::Acquire) != scanned_to {
                    self.ingest();
                }
            }
            if got >= max {
                break;
            }
            // Local queue drained below max: rescan if the tail moved,
            // otherwise try the probe once (only for an empty batch — a
            // partial batch is already a success).
            let tail = self.shared.tail.load(Ordering::Acquire);
            if tail != scanned_to {
                continue;
            }
            if got == 0 {
                if let Some((_prio, task)) = self.probe(tail) {
                    out.push(task);
                    got = 1;
                }
            }
            break;
        }
        if got == 0 {
            self.stats.failed_pops += 1;
        } else {
            self.stats.pops += got as u64;
        }
        got
    }

    fn stats(&self) -> PlaceStats {
        self.stats
    }
}

impl<T: Send + 'static> Drop for CentralizedHandle<T> {
    fn drop(&mut self) {
        // Return stashed free items so reclaim/new handles see them.
        self.cache.drain_to(&self.shared.pool);
        self.shared.handle_live[self.place as usize].store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(nplaces: usize, kmax: u32) -> Arc<CentralizedKPriority<u64>> {
        Arc::new(CentralizedKPriority::new(nplaces, kmax))
    }

    #[test]
    fn single_place_pops_in_priority_order() {
        let p = pool(1, 8);
        let mut h = p.handle(0);
        let prios = [9u64, 3, 7, 1, 8, 2, 2, 5];
        for &x in &prios {
            h.push(x, 4, x * 10);
        }
        let mut out = Vec::new();
        while let Some(t) = h.pop() {
            out.push(t);
        }
        // The single place sees all of its own pushes in its local queue, so
        // pop order is fully sorted.
        assert_eq!(out, vec![10, 20, 20, 30, 50, 70, 80, 90]);
    }

    #[test]
    fn push_pop_interleaved_single_place() {
        let p = pool(1, 16);
        let mut h = p.handle(0);
        h.push(5, 4, 50);
        h.push(1, 4, 10);
        assert_eq!(h.pop(), Some(10));
        h.push(3, 4, 30);
        assert_eq!(h.pop(), Some(30));
        assert_eq!(h.pop(), Some(50));
        assert_eq!(h.pop(), None);
    }

    #[test]
    fn empty_pop_returns_none() {
        let p = pool(2, 8);
        let mut h = p.handle(0);
        assert_eq!(h.pop(), None);
        assert_eq!(h.stats().failed_pops, 1);
    }

    #[test]
    fn tail_advances_when_window_fills() {
        let p = pool(1, 4);
        let mut h = p.handle(0);
        for i in 0..9 {
            h.push(i, 4, i);
        }
        // 9 pushes with k = 4: at least two full windows passed.
        assert!(p.tail() >= 8, "tail = {}", p.tail());
    }

    #[test]
    fn second_place_sees_first_places_tasks() {
        let p = pool(2, 4);
        let mut h0 = p.handle(0);
        let mut h1 = p.handle(1);
        // Push enough to force tasks below the tail (window k = 2).
        for i in 0..10u64 {
            h0.push(100 - i, 2, i);
        }
        // Place 1 never pushed; it must still retrieve tasks via scanning
        // (and possibly the probe for the last in-window ones).
        let mut got = Vec::new();
        for _ in 0..200 {
            if let Some(t) = h1.pop() {
                got.push(t);
            }
            if got.len() == 10 {
                break;
            }
        }
        got.sort();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn k_zero_is_clamped_not_fatal() {
        let p = pool(1, 8);
        let mut h = p.handle(0);
        h.push(1, 0, 11);
        assert_eq!(h.pop(), Some(11));
    }

    #[test]
    fn k_above_kmax_is_clamped() {
        let p = pool(1, 8);
        let mut h = p.handle(0);
        for i in 0..20 {
            h.push(i, 100_000, i); // clamped to kmax = 8
        }
        let mut out = Vec::new();
        while let Some(t) = h.pop() {
            out.push(t);
        }
        assert_eq!(out.len(), 20);
    }

    #[test]
    #[should_panic(expected = "already has a live handle")]
    fn duplicate_handle_panics() {
        let p = pool(2, 8);
        let _a = p.handle(0);
        let _b = p.handle(0);
    }

    #[test]
    fn handle_can_be_recreated_after_drop_and_adopts_orphans() {
        let p = pool(1, 2);
        {
            let mut h = p.handle(0);
            for i in 0..6 {
                h.push(i, 2, i);
            }
            // Drop with tasks still inside (refs in the local queue vanish,
            // the items stay in the global array).
        }
        let mut h = p.handle(0);
        let mut got = Vec::new();
        for _ in 0..500 {
            if let Some(t) = h.pop() {
                got.push(t);
            }
            if got.len() == 6 {
                break;
            }
        }
        got.sort();
        assert_eq!(got, (0..6).collect::<Vec<_>>(), "orphaned tasks adopted");
    }

    /// Sequential ρ-relaxation oracle: whenever a pop by a non-pushing place
    /// returns task `r`, every live task with strictly better priority must
    /// be among the k most recent pushes (ρ = k, §2.2).
    #[test]
    fn relaxation_bound_oracle_sequential() {
        let k = 4usize;
        let p = pool(2, 16);
        let mut pusher = p.handle(0);
        let mut popper = p.handle(1);
        let mut live: Vec<(u64, u64)> = Vec::new(); // (prio, push_seq)
        let mut seq = 0u64;
        let mut rng = XorShift64::new(99);
        let mut pops = 0;
        while pops < 300 {
            if rng.below(2) == 0 || live.is_empty() {
                let prio = rng.below(1000);
                pusher.push(prio, k, prio);
                live.push((prio, seq));
                seq += 1;
            } else if let Some(got) = popper.pop() {
                pops += 1;
                let idx = live
                    .iter()
                    .position(|&(pr, _)| pr == got)
                    .expect("popped task must be live");
                let (got_prio, _) = live.remove(idx);
                for &(pr, s) in &live {
                    if pr < got_prio {
                        assert!(
                            seq - s <= k as u64,
                            "ignored task with prio {pr} pushed {} pushes ago (k = {k})",
                            seq - s
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn reclaim_frees_exhausted_segments() {
        let p = pool(1, 8);
        {
            let mut h = p.handle(0);
            // Push far more than one segment's worth and drain everything.
            for i in 0..(3 * crate::garray::SEGMENT_LEN as u64 + 100) {
                h.push(i, 8, i);
            }
            while h.pop().is_some() {}
        }
        let before = p.segments();
        assert!(before >= 4, "before = {before}");
        let freed = p.reclaim();
        assert!(freed >= 3, "freed = {freed}");
        assert_eq!(p.segments(), before - freed);
        // The structure stays fully usable after reclamation.
        let mut h = p.handle(0);
        h.push(1, 8, 42);
        assert_eq!(h.pop(), Some(42));
        assert_eq!(h.pop(), None);
    }

    #[test]
    fn reclaim_keeps_segments_with_live_items() {
        let p = pool(1, 4);
        {
            let mut h = p.handle(0);
            for i in 0..(crate::garray::SEGMENT_LEN as u64 * 2) {
                h.push(i, 4, i);
            }
            // Drain only half: the first segment still holds live items? No
            // — pops take best-priority first, which is insertion order
            // here, so the first segment drains first. Leave a remainder in
            // the second segment.
            for _ in 0..crate::garray::SEGMENT_LEN + 10 {
                h.pop();
            }
        }
        let freed = p.reclaim();
        assert!(freed >= 1, "fully drained prefix must be reclaimed");
        // Remaining tasks survive reclamation. Items past the tail are only
        // reachable through the random probe, so tolerate spurious failures
        // (allowed by §2.1) while draining.
        let mut h = p.handle(0);
        let mut rest = 0;
        let mut misses = 0;
        while misses < 10_000 {
            if h.pop().is_some() {
                rest += 1;
                misses = 0;
            } else {
                misses += 1;
            }
        }
        assert_eq!(rest, crate::garray::SEGMENT_LEN - 10);
    }

    #[test]
    #[should_panic(expected = "quiescence")]
    fn reclaim_with_live_handle_panics() {
        let p = pool(1, 4);
        let _h = p.handle(0);
        p.reclaim();
    }

    #[test]
    fn concurrent_exactly_once_delivery() {
        let threads = 4usize;
        let per = 3_000u64;
        let p = pool(threads, 64);
        let taken: Vec<std::sync::atomic::AtomicU32> =
            (0..threads as u64 * per).map(|_| 0.into()).collect();
        let taken = Arc::new(taken);
        let total_popped = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for t in 0..threads {
                let p = Arc::clone(&p);
                let taken = Arc::clone(&taken);
                let total_popped = Arc::clone(&total_popped);
                s.spawn(move || {
                    let mut h = p.handle(t);
                    let mut rng = XorShift64::new(t as u64 + 1);
                    let mut pushed = 0u64;
                    loop {
                        if pushed < per && rng.below(2) == 0 {
                            let payload = t as u64 * per + pushed;
                            h.push(rng.below(1 << 20), 16, payload);
                            pushed += 1;
                        } else if let Some(got) = h.pop() {
                            let prev = taken[got as usize].fetch_add(1, Ordering::Relaxed);
                            assert_eq!(prev, 0, "task {got} delivered twice");
                            total_popped.fetch_add(1, Ordering::Relaxed);
                        } else if pushed == per {
                            // Nothing visible to us; others may still hold
                            // work. Exit when globally done.
                            if total_popped.load(Ordering::Relaxed) == threads as u64 * per {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                });
            }
        });
        assert_eq!(total_popped.load(Ordering::Relaxed), threads as u64 * per);
        assert!(taken.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }
}
