//! Lightweight instrumentation counters.
//!
//! Every place handle keeps plain (non-atomic) counters on its hot path and
//! folds them into a [`PlaceStats`] snapshot on request; the scheduler
//! aggregates snapshots across places into the run statistics reported by
//! the figure harness (nodes relaxed, dead tasks, steal/spy activity, …).

/// Number of log₂ buckets in [`PlaceStats::rank_hist`]: bucket 0 holds
/// exact pops (rank 0), bucket *i* ≥ 1 holds ranks in `[2^(i-1), 2^i)`,
/// and the last bucket saturates.
pub const RANK_BUCKETS: usize = 16;

/// Histogram bucket for a rank-error value (see [`RANK_BUCKETS`]).
#[inline]
pub fn rank_bucket(rank: u64) -> usize {
    if rank == 0 {
        0
    } else {
        ((64 - rank.leading_zeros()) as usize).min(RANK_BUCKETS - 1)
    }
}

/// Per-place operation counters.
///
/// All fields count events observed by one place (thread). Aggregate with
/// [`PlaceStats::merge`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlaceStats {
    /// Tasks pushed by this place.
    pub pushes: u64,
    /// Tasks successfully popped (and owned) by this place.
    pub pops: u64,
    /// `pop` calls that returned nothing.
    pub failed_pops: u64,
    /// Take attempts that lost the CAS/TAS race (dead references noticed).
    pub stale_refs: u64,
    /// Steal-half operations that obtained at least one task (work-stealing).
    pub steals: u64,
    /// Spy operations that found at least one reference (hybrid).
    pub spies: u64,
    /// Local lists published to the global list (hybrid).
    pub publishes: u64,
    /// Items taken through the random fallback probe (centralized).
    pub probe_hits: u64,
    /// Global-array/global-list entries ingested into the local queue.
    pub ingested: u64,
    /// Flat-combining passes this place ran that served at least one
    /// delegated op (structural, combining on).
    pub combine_passes: u64,
    /// Shared-queue ops this place executed while holding the combiner
    /// lock — its own plus delegated ones. `combine_ops / combine_passes`
    /// approximates the ops-per-pass mean.
    pub combine_ops: u64,
    /// Most delegated ops this place served in a single combining pass.
    /// Aggregates with `max`, not `+`.
    pub combine_pass_max: u64,
    /// Times this place parked waiting for a combiner response.
    pub combine_parks: u64,
    /// Pops measured by the rank-error instrument (multiqueue, with
    /// `PoolParams::rank_error` set). Zero when the instrument is off.
    pub rank_pops: u64,
    /// Sum of measured rank errors — how many strictly better priorities
    /// were queued at each measured pop. `rank_sum / rank_pops` is the
    /// mean ([`PlaceStats::rank_mean`]).
    pub rank_sum: u64,
    /// Largest measured rank error. Aggregates with `max`, not `+`.
    pub rank_max: u64,
    /// Log₂ histogram of measured rank errors (see [`rank_bucket`]) —
    /// enough resolution for a conservative p99
    /// ([`PlaceStats::rank_p99`]) without giving up `Copy`.
    pub rank_hist: [u64; RANK_BUCKETS],
}

impl PlaceStats {
    /// Element-wise sum — except [`PlaceStats::combine_pass_max`] and
    /// [`PlaceStats::rank_max`], which take the maximum (they are
    /// high-water marks, not counts).
    pub fn merge(&mut self, other: &PlaceStats) {
        self.pushes += other.pushes;
        self.pops += other.pops;
        self.failed_pops += other.failed_pops;
        self.stale_refs += other.stale_refs;
        self.steals += other.steals;
        self.spies += other.spies;
        self.publishes += other.publishes;
        self.probe_hits += other.probe_hits;
        self.ingested += other.ingested;
        self.combine_passes += other.combine_passes;
        self.combine_ops += other.combine_ops;
        self.combine_pass_max = self.combine_pass_max.max(other.combine_pass_max);
        self.combine_parks += other.combine_parks;
        self.rank_pops += other.rank_pops;
        self.rank_sum += other.rank_sum;
        self.rank_max = self.rank_max.max(other.rank_max);
        for (a, b) in self.rank_hist.iter_mut().zip(other.rank_hist.iter()) {
            *a += b;
        }
    }

    /// Mean measured rank error (0.0 when the instrument is off).
    pub fn rank_mean(&self) -> f64 {
        if self.rank_pops == 0 {
            0.0
        } else {
            self.rank_sum as f64 / self.rank_pops as f64
        }
    }

    /// Conservative 99th-percentile rank error: the upper bound of the
    /// histogram bucket holding the ⌈0.99·rank_pops⌉-th smallest sample,
    /// clamped to the exact observed max. 0 when the instrument is off.
    pub fn rank_p99(&self) -> u64 {
        if self.rank_pops == 0 {
            return 0;
        }
        let rank = ((0.99 * self.rank_pops as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &n) in self.rank_hist.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Bucket 0 holds exactly rank 0; bucket i ≥ 1 covers
                // [2^(i-1), 2^i), so its inclusive upper bound is 2^i - 1.
                let upper = if idx == 0 { 0 } else { (1u64 << idx) - 1 };
                return upper.min(self.rank_max);
            }
        }
        self.rank_max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_fields() {
        let mut a = PlaceStats {
            pushes: 1,
            pops: 2,
            failed_pops: 3,
            stale_refs: 4,
            steals: 5,
            spies: 6,
            publishes: 7,
            probe_hits: 8,
            ingested: 9,
            combine_passes: 10,
            combine_ops: 11,
            combine_pass_max: 12,
            combine_parks: 13,
            rank_pops: 14,
            rank_sum: 15,
            rank_max: 16,
            rank_hist: [1; RANK_BUCKETS],
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.pushes, 2);
        assert_eq!(a.pops, 4);
        assert_eq!(a.ingested, 18);
        assert_eq!(a.combine_passes, 20);
        assert_eq!(a.combine_ops, 22);
        assert_eq!(a.combine_parks, 26);
        assert_eq!(a.rank_pops, 28);
        assert_eq!(a.rank_sum, 30);
        assert_eq!(a.rank_hist, [2; RANK_BUCKETS]);
    }

    #[test]
    fn merge_takes_max_of_rank_high_water_mark() {
        let mut a = PlaceStats {
            rank_max: 5,
            ..PlaceStats::default()
        };
        a.merge(&PlaceStats {
            rank_max: 9,
            ..PlaceStats::default()
        });
        assert_eq!(a.rank_max, 9);
        a.merge(&PlaceStats {
            rank_max: 2,
            ..PlaceStats::default()
        });
        assert_eq!(a.rank_max, 9);
    }

    #[test]
    fn rank_buckets_cover_the_domain() {
        assert_eq!(rank_bucket(0), 0);
        assert_eq!(rank_bucket(1), 1);
        assert_eq!(rank_bucket(2), 2);
        assert_eq!(rank_bucket(3), 2);
        assert_eq!(rank_bucket(4), 3);
        assert_eq!(rank_bucket(u64::MAX), RANK_BUCKETS - 1);
        // Monotone: a larger rank never lands in a smaller bucket.
        let mut prev = 0;
        for r in 0..1 << 17 {
            let b = rank_bucket(r);
            assert!(b >= prev);
            prev = b;
        }
    }

    #[test]
    fn rank_summaries_from_counters() {
        let mut s = PlaceStats::default();
        assert_eq!(s.rank_mean(), 0.0);
        assert_eq!(s.rank_p99(), 0);
        // 99 exact pops and one rank-7 outlier: the mean is small, the
        // p99 must sit on the outlier's bucket (clamped to the true max).
        s.rank_pops = 100;
        s.rank_sum = 7;
        s.rank_max = 7;
        s.rank_hist[rank_bucket(0)] += 99;
        s.rank_hist[rank_bucket(7)] += 1;
        assert_eq!(s.rank_mean(), 0.07);
        assert_eq!(s.rank_p99(), 0, "rank 99 of 100 is still an exact pop");
        s.rank_hist[rank_bucket(0)] -= 1;
        s.rank_hist[rank_bucket(7)] += 1;
        s.rank_sum += 7;
        assert_eq!(s.rank_p99(), 7, "two outliers push p99 into their bucket");
    }

    #[test]
    fn merge_takes_max_of_pass_high_water_mark() {
        let mut a = PlaceStats {
            combine_pass_max: 3,
            ..PlaceStats::default()
        };
        a.merge(&PlaceStats {
            combine_pass_max: 7,
            ..PlaceStats::default()
        });
        assert_eq!(a.combine_pass_max, 7);
        a.merge(&PlaceStats {
            combine_pass_max: 2,
            ..PlaceStats::default()
        });
        assert_eq!(a.combine_pass_max, 7);
    }
}
