//! Seeded Erdős–Rényi `G(n, p)` samplers with uniform `(0, 1]` weights.
//!
//! The paper's experiments (§5.5) use 20 undirected graphs with
//! `n = 10000`, edge probability `p = 0.5` and uniformly distributed random
//! edge weights; its theory (§5.2.1) assumes `λ(e) ∈ U(0, 1]` and
//! `p > (1+ε) ln n / n` so the graph is connected w.h.p.
//!
//! Two sampling strategies are used, selected automatically:
//!
//! * **Geometric skipping** for sparse graphs: instead of one Bernoulli trial
//!   per node pair, jump ahead by `⌊ln U / ln(1−p)⌋` pairs per generated
//!   edge, which costs O(m) instead of O(n²) RNG work.
//! * **Dense enumeration** for large `p` (where skipping saves nothing):
//!   one Bernoulli trial per pair.
//!
//! Both sample the identical distribution; a test checks they agree
//! statistically. All sampling is deterministic in the seed so every data
//! structure, the simulator, and the theory harness see the *same* 20 graphs,
//! mirroring "exactly the same 20 random graphs used in the experiments"
//! (§5.4.1).

use crate::csr::CsrGraph;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Parameters of an Erdős–Rényi sample.
#[derive(Clone, Copy, Debug)]
pub struct ErdosRenyiConfig {
    /// Number of nodes.
    pub n: usize,
    /// Independent probability of each of the `n(n-1)/2` edges.
    pub p: f64,
    /// RNG seed; equal seeds produce equal graphs.
    pub seed: u64,
}

impl ErdosRenyiConfig {
    /// The paper's experimental configuration (§5.5): `n = 10000`, `p = 0.5`,
    /// with `seed` selecting one of the replicated graphs.
    pub fn paper(seed: u64) -> Self {
        ErdosRenyiConfig {
            n: 10_000,
            p: 0.5,
            seed,
        }
    }

    /// Expected number of undirected edges, `p · n(n−1)/2`.
    pub fn expected_edges(&self) -> f64 {
        self.p * (self.n as f64) * (self.n as f64 - 1.0) / 2.0
    }
}

/// Samples `G(n, p)` with uniform `(0, 1]` weights.
///
/// # Panics
/// Panics if `p` is not within `[0, 1]`.
pub fn erdos_renyi(cfg: &ErdosRenyiConfig) -> CsrGraph {
    assert!(
        (0.0..=1.0).contains(&cfg.p),
        "edge probability must be in [0, 1], got {}",
        cfg.p
    );
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    // Geometric skipping beats per-pair trials roughly when the expected
    // skip length 1/p exceeds ~2; use it for p < 0.25 and enumerate pairs
    // otherwise. Both paths share the RNG type but use it differently, so
    // the *same seed with a different p regime* yields unrelated graphs —
    // which is fine, seeds identify graphs only within a fixed config.
    let edges = if cfg.p < 0.25 {
        sample_sparse(cfg, &mut rng)
    } else {
        sample_dense(cfg, &mut rng)
    };
    CsrGraph::from_undirected_edges(cfg.n, &edges)
}

/// Uniform weight in `(0, 1]`: `1 − U[0,1)` maps the half-open unit interval
/// onto `(0, 1]`, guaranteeing strictly positive weights as the model
/// requires (`λ : E → R+`).
#[inline]
fn uniform_weight(rng: &mut ChaCha8Rng) -> f32 {
    1.0 - rng.gen::<f32>()
}

/// One Bernoulli trial per pair `(u, v)`, `u < v`.
fn sample_dense(cfg: &ErdosRenyiConfig, rng: &mut ChaCha8Rng) -> Vec<(u32, u32, f32)> {
    let mut edges = Vec::with_capacity(cfg.expected_edges() as usize + 16);
    for u in 0..cfg.n as u32 {
        for v in (u + 1)..cfg.n as u32 {
            if rng.gen_bool(cfg.p) {
                edges.push((u, v, uniform_weight(rng)));
            }
        }
    }
    edges
}

/// Geometric-skip sampling over the linearized pair index space.
///
/// Pairs `(u, v)` with `u < v` are enumerated in lexicographic order and
/// given indices `0 .. n(n−1)/2`; the sampler jumps from one selected pair to
/// the next with geometrically distributed gaps.
fn sample_sparse(cfg: &ErdosRenyiConfig, rng: &mut ChaCha8Rng) -> Vec<(u32, u32, f32)> {
    let n = cfg.n as u64;
    let total_pairs = n * (n - 1) / 2;
    let mut edges = Vec::with_capacity(cfg.expected_edges() as usize + 16);
    if cfg.p == 0.0 || total_pairs == 0 {
        return edges;
    }
    if cfg.p >= 1.0 {
        for u in 0..cfg.n as u32 {
            for v in (u + 1)..cfg.n as u32 {
                edges.push((u, v, uniform_weight(rng)));
            }
        }
        return edges;
    }
    let log_q = (1.0 - cfg.p).ln();
    let mut idx: u64 = 0;
    loop {
        // Geometric(p) gap: number of failures before the next success.
        let u: f64 = rng.gen::<f64>();
        // Clamp to avoid ln(0); the gap is capped far above total_pairs.
        let gap = ((1.0 - u).ln() / log_q).floor() as u64;
        idx = idx.saturating_add(gap);
        if idx >= total_pairs {
            break;
        }
        let (a, b) = unrank_pair(idx, n);
        edges.push((a as u32, b as u32, uniform_weight(rng)));
        idx += 1;
        if idx >= total_pairs {
            break;
        }
    }
    edges
}

/// Inverse of the lexicographic pair ranking: maps `idx ∈ [0, n(n−1)/2)` to
/// the pair `(u, v)`, `u < v`, where pairs are ordered `(0,1), (0,2), …,
/// (0,n−1), (1,2), …`.
fn unrank_pair(idx: u64, n: u64) -> (u64, u64) {
    // Row u starts at offset f(u) = u*n − u(u+3)/2 ... solve by binary search
    // to stay exact for 64-bit ranges (float inversion drifts for huge n).
    let row_start = |u: u64| -> u64 { u * n - u * (u + 1) / 2 };
    let mut lo = 0u64;
    let mut hi = n - 1;
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        if row_start(mid) <= idx {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    let u = lo;
    let v = u + 1 + (idx - row_start(u));
    debug_assert!(v < n, "unranked column out of range");
    (u, v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unrank_is_lexicographic() {
        let n = 7u64;
        let mut expected = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                expected.push((u, v));
            }
        }
        let got: Vec<(u64, u64)> = (0..expected.len() as u64)
            .map(|i| unrank_pair(i, n))
            .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn p_zero_gives_empty_graph() {
        let g = erdos_renyi(&ErdosRenyiConfig {
            n: 100,
            p: 0.0,
            seed: 1,
        });
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn p_one_gives_complete_graph() {
        let n = 40;
        let g = erdos_renyi(&ErdosRenyiConfig { n, p: 1.0, seed: 1 });
        assert_eq!(g.num_edges(), n * (n - 1) / 2);
    }

    #[test]
    fn deterministic_in_seed() {
        let cfg = ErdosRenyiConfig {
            n: 200,
            p: 0.1,
            seed: 42,
        };
        let a = erdos_renyi(&cfg);
        let b = erdos_renyi(&cfg);
        assert_eq!(a.num_edges(), b.num_edges());
        let ea: Vec<_> = a.undirected_edges().collect();
        let eb: Vec<_> = b.undirected_edges().collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn different_seeds_differ() {
        let a = erdos_renyi(&ErdosRenyiConfig {
            n: 200,
            p: 0.1,
            seed: 1,
        });
        let b = erdos_renyi(&ErdosRenyiConfig {
            n: 200,
            p: 0.1,
            seed: 2,
        });
        let ea: Vec<_> = a.undirected_edges().collect();
        let eb: Vec<_> = b.undirected_edges().collect();
        assert_ne!(ea, eb);
    }

    #[test]
    fn edge_count_near_expectation_dense() {
        let cfg = ErdosRenyiConfig {
            n: 400,
            p: 0.5,
            seed: 7,
        };
        let g = erdos_renyi(&cfg);
        let expected = cfg.expected_edges();
        // ~5 standard deviations of a Binomial(n(n-1)/2, p).
        let sd = (expected * (1.0 - cfg.p)).sqrt();
        let diff = (g.num_edges() as f64 - expected).abs();
        assert!(
            diff < 5.0 * sd,
            "count {} vs expected {expected}",
            g.num_edges()
        );
    }

    #[test]
    fn edge_count_near_expectation_sparse() {
        let cfg = ErdosRenyiConfig {
            n: 2000,
            p: 0.01,
            seed: 7,
        };
        let g = erdos_renyi(&cfg);
        let expected = cfg.expected_edges();
        let sd = (expected * (1.0 - cfg.p)).sqrt();
        let diff = (g.num_edges() as f64 - expected).abs();
        assert!(
            diff < 5.0 * sd,
            "count {} vs expected {expected}",
            g.num_edges()
        );
    }

    #[test]
    fn weights_in_half_open_unit_interval() {
        let g = erdos_renyi(&ErdosRenyiConfig {
            n: 300,
            p: 0.2,
            seed: 3,
        });
        for (_, _, w) in g.undirected_edges() {
            assert!(w > 0.0 && w <= 1.0, "weight {w} outside (0, 1]");
        }
    }

    #[test]
    fn paper_scale_connectivity_threshold() {
        // p well above ln n / n must give a connected graph w.h.p.
        let n = 1000;
        let p = 3.0 * (n as f64).ln() / n as f64;
        let g = erdos_renyi(&ErdosRenyiConfig { n, p, seed: 9 });
        assert!(g.is_connected());
    }

    #[test]
    fn weight_mean_close_to_half() {
        let g = erdos_renyi(&ErdosRenyiConfig {
            n: 500,
            p: 0.3,
            seed: 11,
        });
        let (sum, cnt) = g
            .undirected_edges()
            .fold((0.0f64, 0usize), |(s, c), (_, _, w)| (s + w as f64, c + 1));
        let mean = sum / cnt as f64;
        assert!((mean - 0.5).abs() < 0.01, "weight mean {mean}");
    }
}
