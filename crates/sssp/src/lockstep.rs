//! Lockstep (virtual-place) SSSP runner for ordering-quality experiments.
//!
//! The paper measured Figures 4–5 on an 80-core machine, where the *useless
//! work* of each data structure emerges from truly concurrent places. On
//! hosts with few hardware threads, OS timeslicing runs each worker for
//! long stretches, which hides exactly the interleaving that produces
//! premature relaxations — a work-stealing place that runs alone for a full
//! quantum behaves like sequential Dijkstra.
//!
//! This runner restores the paper's interleaving deterministically: a single
//! thread owns one place handle *per virtual place* and services them
//! round-robin, one task per place per round — the task-granular analog of
//! the theoretical model's "in each phase up to P nodes are relaxed"
//! (§5.2.1). All pushes/pops go through the real data structures, so their
//! ordering behaviour (local-only priorities for work-stealing, ρ-relaxed
//! global order for the k-structures) is exactly what is measured; only the
//! physical concurrency is virtualized.
//!
//! Wall-clock numbers from this runner are meaningless (it is one thread);
//! use it for the "nodes relaxed" panels and the threaded runner for time.

use crate::distances::AtomicDistances;
use crate::executor::SsspTask;
use crate::runner::{SsspConfig, SsspResult};
use priosched_core::stats::PlaceStats;
use priosched_core::{PoolHandle, PoolKind, TaskPool};
use priosched_graph::CsrGraph;
use std::sync::Arc;
use std::time::Instant;

/// Runs SSSP over `pool` with `cfg.places` virtual places serviced
/// round-robin by the calling thread.
pub fn run_sssp_lockstep<P>(
    pool: Arc<P>,
    graph: &CsrGraph,
    source: u32,
    cfg: &SsspConfig,
) -> SsspResult
where
    P: TaskPool<SsspTask>,
{
    assert!((source as usize) < graph.num_nodes(), "source out of range");
    let start = Instant::now();
    let dist = AtomicDistances::new(graph.num_nodes());
    dist.store(source, 0.0);

    let mut handles: Vec<P::Handle> = (0..cfg.places).map(|p| pool.handle(p)).collect();
    let mut pending: u64 = 1;
    handles[0].push(
        0,
        cfg.pool.k,
        SsspTask {
            node: source,
            dist_bits: 0f64.to_bits(),
        },
    );

    let mut relaxed = 0u64;
    let mut dead = 0u64;
    // Reused relaxation buffer: each node expansion batches its successful
    // relaxations and stores them with one `push_batch` (the same batched
    // spawn path the threaded executor uses).
    let mut batch: Vec<(u64, SsspTask)> = Vec::new();
    while pending > 0 {
        for h in handles.iter_mut() {
            let Some(task) = h.pop() else { continue };
            pending -= 1;
            // Dead-task elimination (§5.1) and Listing 5's in-task re-check
            // coincide here — there is no scheduling gap between them in a
            // single-threaded driver.
            let d_bits = dist.load_bits(task.node);
            if d_bits != task.dist_bits {
                dead += 1;
                continue;
            }
            relaxed += 1;
            let d = f64::from_bits(d_bits);
            for e in graph.neighbors(task.node) {
                let nd = d + e.weight as f64;
                let nb = nd.to_bits();
                if dist.try_decrease(e.target, nb) {
                    batch.push((
                        nb,
                        SsspTask {
                            node: e.target,
                            dist_bits: nb,
                        },
                    ));
                }
            }
            pending += batch.len() as u64;
            h.push_batch(cfg.pool.k, &mut batch);
        }
    }

    let mut pool_stats = PlaceStats::default();
    for h in &handles {
        pool_stats.merge(&h.stats());
    }
    SsspResult {
        dist: dist.snapshot(),
        relaxed,
        dead,
        elapsed: start.elapsed(),
        pool_stats,
    }
}

/// Lockstep runner with the structure chosen at runtime.
///
/// Goes through [`PoolKind::build`] (wall-clock from this runner is
/// meaningless anyway, so the erased pool's per-op branch costs nothing
/// that matters); `cfg.pool` supplies the structural `k` and centralized
/// `kmax` knobs.
pub fn run_sssp_lockstep_kind(
    kind: PoolKind,
    graph: &CsrGraph,
    source: u32,
    cfg: &SsspConfig,
) -> SsspResult {
    let pool = Arc::new(kind.build(cfg.places, cfg.pool));
    run_sssp_lockstep(pool, graph, source, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use priosched_graph::{dijkstra, erdos_renyi, ErdosRenyiConfig};

    #[test]
    fn lockstep_matches_dijkstra_for_all_structures() {
        let g = erdos_renyi(&ErdosRenyiConfig {
            n: 150,
            p: 0.08,
            seed: 44,
        });
        let expect = dijkstra(&g, 0).dist;
        for kind in PoolKind::ALL {
            let cfg = SsspConfig::new(8, 32);
            let res = run_sssp_lockstep_kind(kind, &g, 0, &cfg);
            assert_eq!(res.dist, expect, "{kind}");
        }
    }

    #[test]
    fn lockstep_single_place_is_dijkstra_order() {
        let g = erdos_renyi(&ErdosRenyiConfig {
            n: 200,
            p: 0.05,
            seed: 45,
        });
        let reachable = dijkstra(&g, 0)
            .dist
            .iter()
            .filter(|d| d.is_finite())
            .count() as u64;
        for kind in PoolKind::PAPER {
            let cfg = SsspConfig::new(1, 512);
            let res = run_sssp_lockstep_kind(kind, &g, 0, &cfg);
            assert_eq!(res.relaxed, reachable, "{kind}");
        }
    }

    /// The headline ordering claim of Figure 4b, reproduced deterministically:
    /// under interleaved execution work-stealing performs significantly more
    /// useless work than the relaxed global structures.
    #[test]
    fn workstealing_wastes_more_work_than_k_structures() {
        let g = erdos_renyi(&ErdosRenyiConfig {
            n: 400,
            p: 0.5,
            seed: 46,
        });
        let cfg = SsspConfig::new(32, 64);
        let ws = run_sssp_lockstep_kind(PoolKind::WorkStealing, &g, 0, &cfg).relaxed;
        let ce = run_sssp_lockstep_kind(PoolKind::Centralized, &g, 0, &cfg).relaxed;
        let hy = run_sssp_lockstep_kind(PoolKind::Hybrid, &g, 0, &cfg).relaxed;
        assert!(
            ws > ce && ws > hy,
            "work-stealing must waste the most work: ws={ws} centralized={ce} hybrid={hy}"
        );
        assert!(
            ce >= 400 && hy >= 400,
            "every reachable node relaxed at least once"
        );
    }
}
