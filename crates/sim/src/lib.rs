#![warn(missing_docs)]

//! Phase-wise execution simulator and analytical bounds (§5.2, §5.4).
//!
//! The paper bridges its theory and its experiments with a simulator: "The
//! simulator uses the phase-wise execution model used in the theoretical
//! analysis and allows us to vary the parameters P and ρ" (§5.4). This crate
//! reproduces both halves:
//!
//! * [`simulator`] — the phase model: all active nodes sorted by tentative
//!   distance; each phase relaxes the `P` best *visible* nodes, where the ρ
//!   newest active nodes are held out (invisible) except that the global
//!   minimum is always visible; updates apply at phase end.
//! * [`theory`] — Theorem 5's upper bound on useless work per phase, in
//!   both the exact pairwise form and the simplified `h*` form (Remark 1),
//!   evaluated in the log domain so the `(n−2)!/(n−1−L)!` exponents never
//!   overflow.
//!
//! Together they regenerate all three panels of Figure 3.

pub mod simulator;
pub mod theory;

pub use simulator::{simulate_sssp, PhaseRecord, SimConfig, SimResult};
pub use theory::TheoryBound;
