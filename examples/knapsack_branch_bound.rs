//! Best-first branch-and-bound 0/1 knapsack — thin wrapper over
//! [`priosched::workloads::KnapsackWorkload`].
//!
//! The paper motivates priority scheduling with applications whose task
//! order matters (§1). Branch-and-bound is the classic case: exploring
//! nodes with the best upper bound first finds the optimum sooner and lets
//! bound-based pruning kill most of the tree — and pruned tasks are exactly
//! the paper's *dead tasks* (§5.1), eliminated lazily at pop time. The
//! solver (greedy fractional bound, incumbent pruning, exact DP oracle)
//! lives in `crates/workloads`; this example sweeps the relaxation
//! parameter `k` to show the work/synchronization trade-off.
//!
//! Run with: `cargo run --release --example knapsack_branch_bound`

use priosched::core::{PoolKind, PoolParams};
use priosched::workloads::{run_workload, KnapsackWorkload};

fn main() {
    let workload = KnapsackWorkload::random(36, 4_000, 0x1234_5678_9ABC_DEF0);
    println!(
        "0/1 knapsack: 36 items, capacity 4000; DP optimum = {}\n",
        workload.oracle()
    );

    for k in [1usize, 64, 4096] {
        let report = run_workload(&workload, PoolKind::Hybrid, 4, PoolParams::with_k(k));
        report.expect_verified();
        println!(
            "k = {k:<5} optimum {} in {:>8.2?}; explored {:>7} nodes, pruned-as-dead {:>7}",
            workload.oracle(),
            report.elapsed,
            report.executed,
            report.dead
        );
    }
    println!("\nSmaller k = stronger best-first order = fewer explored nodes,");
    println!("at the cost of more synchronization per push (the paper's trade-off).");
}
