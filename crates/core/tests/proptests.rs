//! Property-based tests for the scheduling data structures.
//!
//! Strategy: drive each structure single-threadedly (which the
//! place-handle design makes possible — handles are plain objects) through
//! arbitrary interleavings of pushes and pops across two places, and check
//! against a reference multiset:
//!
//! 1. **conservation** — every pop returns a previously pushed, not yet
//!    popped task; at drain time nothing is lost or duplicated;
//! 2. **ρ-relaxation (centralized)** — whenever a pop returns a task while
//!    a strictly better one is live, the ignored task is among the last k
//!    tasks pushed (§2.2: "a pop operation is allowed to ignore the last k
//!    items added to the data structure");
//! 3. **single-place strictness** — with one place, pops come out in exact
//!    priority order for every structure.

use priosched_core::{
    CentralizedKPriority, HybridKPriority, PoolHandle, PriorityWorkStealing, RelaxedMultiQueue,
    StructuralKPriority, TaskPool,
};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

#[derive(Clone, Debug)]
enum Op {
    /// Push with the given priority from place (index % 2).
    Push { place: u8, prio: u16 },
    /// Pop from place (index % 2).
    Pop { place: u8 },
    /// Batched push of several priorities from place (index % 2).
    PushBatch { place: u8, prios: Vec<u16> },
    /// Batched pop of up to `max % 8 + 1` tasks from place (index % 2).
    PopBatch { place: u8, max: u8 },
}

fn ops_strategy(max_len: usize) -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            3 => (any::<u8>(), any::<u16>()).prop_map(|(place, prio)| Op::Push { place, prio }),
            2 => any::<u8>().prop_map(|place| Op::Pop { place }),
            1 => (any::<u8>(), proptest::collection::vec(any::<u16>(), 0..24))
                .prop_map(|(place, prios)| Op::PushBatch { place, prios }),
            1 => (any::<u8>(), any::<u8>()).prop_map(|(place, max)| Op::PopBatch { place, max }),
        ],
        0..max_len,
    )
}

/// A live entry: payload, global push sequence, pushing place, and the
/// pushing place's local sequence at push time.
#[derive(Clone, Copy, Debug)]
struct LiveEntry {
    payload: u64,
    global_seq: u64,
    place: usize,
    local_seq: u64,
}

/// Reference multiset: priority -> live entries.
#[derive(Default)]
struct Model {
    live: BTreeMap<u64, Vec<LiveEntry>>,
    pushes: u64,
    place_pushes: [u64; 2],
}

impl Model {
    fn push(&mut self, prio: u64, payload: u64, place: usize) {
        self.live.entry(prio).or_default().push(LiveEntry {
            payload,
            global_seq: self.pushes,
            place,
            local_seq: self.place_pushes[place],
        });
        self.pushes += 1;
        self.place_pushes[place] += 1;
    }

    fn remove(&mut self, prio: u64, payload: u64) {
        let entries = self.live.get_mut(&prio).expect("priority must be live");
        let idx = entries
            .iter()
            .position(|e| e.payload == payload)
            .expect("payload must be live");
        entries.remove(idx);
        if entries.is_empty() {
            self.live.remove(&prio);
        }
    }

    /// Live tasks with strictly better (smaller) priority.
    fn better_than(&self, prio: u64) -> Vec<LiveEntry> {
        self.live
            .range(..prio)
            .flat_map(|(_, v)| v.iter().copied())
            .collect()
    }
}

/// Which pushes count against an ignored task's relaxation budget.
#[derive(Clone, Copy, Debug)]
enum RelaxationScope {
    /// Centralized: "the last k items added to the data structure" —
    /// later pushes counted globally.
    Global,
    /// Hybrid: "the last k items added by each thread" — later pushes
    /// counted per pushing place.
    PerPlace,
}

/// Runs ops on a pool; checks conservation, and, when `relaxation_k` is
/// given, the global temporal relaxation bound.
fn run_model_check<P: TaskPool<u64>>(
    pool: Arc<P>,
    ops: &[Op],
    push_k: usize,
    relaxation: Option<(RelaxationScope, u64)>,
) -> Result<(), TestCaseError> {
    let mut handles = [pool.handle(0), pool.handle(1)];
    let mut model = Model::default();
    let mut next_payload = 0u64;
    let mut prio_of: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();

    // Shared oracle for scalar and batched pops: each returned task is
    // checked exactly as one scalar pop would be (a batch is defined as
    // the sequence of scalar pops it replaces).
    fn check_popped(
        payload: u64,
        model: &mut Model,
        prio_of: &std::collections::HashMap<u64, u64>,
        relaxation: Option<(RelaxationScope, u64)>,
    ) -> Result<(), TestCaseError> {
        let prio = *prio_of.get(&payload).expect("popped task was never pushed");
        let better = model.better_than(prio);
        model.remove(prio, payload);
        if let Some((scope, k)) = relaxation {
            for b in better {
                // Pushes after the ignored task, in the scope the
                // structure's guarantee speaks about.
                let after = match scope {
                    RelaxationScope::Global => model.pushes - 1 - b.global_seq,
                    RelaxationScope::PerPlace => model.place_pushes[b.place] - 1 - b.local_seq,
                };
                prop_assert!(
                    after <= k,
                    "pop ignored task {} with {after} later pushes \
                     ({scope:?} scope, allowed: {k})",
                    b.payload
                );
            }
        }
        Ok(())
    }

    let mut pop_buf: Vec<u64> = Vec::new();
    for op in ops {
        match op {
            Op::Push { place, prio } => {
                let place = (place % 2) as usize;
                let prio = *prio as u64;
                let payload = next_payload;
                next_payload += 1;
                handles[place].push(prio, push_k, payload);
                prio_of.insert(payload, prio);
                model.push(prio, payload, place);
            }
            Op::Pop { place } => {
                let place = (place % 2) as usize;
                if let Some(payload) = handles[place].pop() {
                    check_popped(payload, &mut model, &prio_of, relaxation)?;
                }
            }
            Op::PushBatch { place, prios } => {
                let place = (place % 2) as usize;
                let mut batch: Vec<(u64, u64)> = Vec::with_capacity(prios.len());
                for &prio in prios {
                    let prio = prio as u64;
                    let payload = next_payload;
                    next_payload += 1;
                    batch.push((prio, payload));
                    prio_of.insert(payload, prio);
                    model.push(prio, payload, place);
                }
                handles[place].push_batch(push_k, &mut batch);
                prop_assert!(batch.is_empty(), "push_batch must drain its input");
            }
            Op::PopBatch { place, max } => {
                let place = (place % 2) as usize;
                let max = (*max % 8) as usize + 1;
                pop_buf.clear();
                let got = handles[place].try_pop_batch(&mut pop_buf, max);
                prop_assert_eq!(got, pop_buf.len());
                prop_assert!(got <= max);
                for &payload in &pop_buf {
                    check_popped(payload, &mut model, &prio_of, relaxation)?;
                }
            }
        }
    }

    // Drain everything: conservation.
    let live_count: usize = model.live.values().map(|v| v.len()).sum();
    let mut drained = 0usize;
    let mut misses = 0;
    while misses < 20_000 && drained < live_count {
        let mut any = false;
        for h in handles.iter_mut() {
            if let Some(payload) = h.pop() {
                prop_assert!(prio_of.contains_key(&payload), "unknown payload");
                drained += 1;
                any = true;
            }
        }
        if !any {
            misses += 1;
        }
    }
    prop_assert_eq!(drained, live_count, "tasks lost or duplicated at drain");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn workstealing_conserves_tasks(ops in ops_strategy(150)) {
        run_model_check(Arc::new(PriorityWorkStealing::new(2)), &ops, 4, None)?;
    }

    #[test]
    fn centralized_conserves_tasks(ops in ops_strategy(150)) {
        run_model_check(Arc::new(CentralizedKPriority::new(2, 16)), &ops, 4, None)?;
    }

    #[test]
    fn hybrid_conserves_tasks(ops in ops_strategy(150)) {
        run_model_check(Arc::new(HybridKPriority::new(2)), &ops, 4, None)?;
    }

    #[test]
    fn structural_conserves_tasks(ops in ops_strategy(150)) {
        run_model_check(Arc::new(StructuralKPriority::new(2, 4)), &ops, 4, None)?;
    }

    /// The relaxed MultiQueue has no ρ bound to check, but conservation
    /// (exactly-once, nothing lost at drain) must hold like everywhere
    /// else; c = 2 queues per place exercises the two-choice pop and the
    /// exhaustive fallback scan.
    #[test]
    fn multiqueue_conserves_tasks(ops in ops_strategy(150)) {
        run_model_check(Arc::new(RelaxedMultiQueue::new(2, 2)), &ops, 4, None)?;
    }

    /// §2.2's temporal bound for the centralized structure, with uniform
    /// per-task k = 4: a pop never ignores a better task older than the
    /// last 4 pushes *to the structure* (global scope).
    #[test]
    fn centralized_relaxation_oracle(ops in ops_strategy(200)) {
        run_model_check(
            Arc::new(CentralizedKPriority::new(2, 16)),
            &ops,
            4,
            Some((RelaxationScope::Global, 4)),
        )?;
    }

    /// Hybrid: "pop operations … are allowed to ignore the last k items
    /// added by each thread" (§2.2) — per-place scope, with uniform k = 4
    /// (the publish budget admits at most k unpublished successors).
    #[test]
    fn hybrid_relaxation_oracle(ops in ops_strategy(200)) {
        run_model_check(
            Arc::new(HybridKPriority::new(2)),
            &ops,
            4,
            Some((RelaxationScope::PerPlace, 4)),
        )?;
    }

    /// Batch/scalar equivalence: pushing via `push_batch` and draining via
    /// `try_pop_batch` yields a permutation of the scalar history — and
    /// with one place, the exact same sorted sequence.
    #[test]
    fn batched_ops_are_permutation_of_scalar(
        prios in proptest::collection::vec(any::<u16>(), 0..150),
        chunk in 1usize..48,
        pop_chunk in 1usize..48,
    ) {
        fn check<P: TaskPool<u64>>(
            pool: Arc<P>,
            prios: &[u16],
            chunk: usize,
            pop_chunk: usize,
        ) -> Result<(), TestCaseError> {
            // Scalar reference on place 0 of a fresh pool: push + drain.
            let mut scalar_out = Vec::new();
            {
                let mut h = pool.handle(0);
                for (i, &p) in prios.iter().enumerate() {
                    h.push(p as u64, 4, ((p as u64) << 32) | i as u64);
                }
                while let Some(x) = h.pop() {
                    scalar_out.push(x >> 32);
                }
            }
            // Batched run on place 1 (same pool, now empty): chunked
            // push_batch + chunked try_pop_batch.
            let mut batch_out = Vec::new();
            {
                let mut h = pool.handle(1);
                let mut i = 0u64;
                for chunk_prios in prios.chunks(chunk) {
                    let mut batch: Vec<(u64, u64)> = chunk_prios
                        .iter()
                        .map(|&p| {
                            let payload = ((p as u64) << 32) | i;
                            i += 1;
                            (p as u64, payload)
                        })
                        .collect();
                    h.push_batch(4, &mut batch);
                    prop_assert!(batch.is_empty());
                }
                let mut buf = Vec::new();
                loop {
                    buf.clear();
                    if h.try_pop_batch(&mut buf, pop_chunk) == 0 {
                        break;
                    }
                    batch_out.extend(buf.iter().map(|x| x >> 32));
                }
            }
            // Both drains saw every task exactly once (permutation) …
            let mut expect: Vec<u64> = prios.iter().map(|&p| p as u64).collect();
            expect.sort();
            let mut scalar_sorted = scalar_out.clone();
            scalar_sorted.sort();
            let mut batch_sorted = batch_out.clone();
            batch_sorted.sort();
            prop_assert_eq!(&scalar_sorted, &expect);
            prop_assert_eq!(&batch_sorted, &expect);
            // … and single-place drains are strictly priority-ordered, so
            // batched and scalar histories coincide exactly.
            prop_assert_eq!(&scalar_out, &expect);
            prop_assert_eq!(&batch_out, &expect);
            Ok(())
        }
        check(Arc::new(PriorityWorkStealing::new(2)), &prios, chunk, pop_chunk)?;
        check(Arc::new(CentralizedKPriority::new(2, 64)), &prios, chunk, pop_chunk)?;
        check(Arc::new(HybridKPriority::new(2)), &prios, chunk, pop_chunk)?;
        check(Arc::new(StructuralKPriority::new(2, 8)), &prios, chunk, pop_chunk)?;
    }

    /// Single place: strict priority order for every structure.
    #[test]
    fn single_place_strict_order(prios in proptest::collection::vec(any::<u16>(), 0..100)) {
        fn check<P: TaskPool<u64>>(pool: Arc<P>, prios: &[u16]) -> Result<(), TestCaseError> {
            let mut h = pool.handle(0);
            for (i, &p) in prios.iter().enumerate() {
                // payload encodes (prio, index) so equal priorities are
                // distinguishable; pop order must be sorted by prio.
                h.push(p as u64, 4, ((p as u64) << 32) | i as u64);
            }
            let mut out = Vec::new();
            while let Some(x) = h.pop() {
                out.push(x >> 32);
            }
            let mut expect: Vec<u64> = prios.iter().map(|&p| p as u64).collect();
            expect.sort();
            prop_assert_eq!(out, expect);
            Ok(())
        }
        check(Arc::new(PriorityWorkStealing::new(1)), &prios)?;
        check(Arc::new(CentralizedKPriority::new(1, 32)), &prios)?;
        check(Arc::new(HybridKPriority::new(1)), &prios)?;
        check(Arc::new(StructuralKPriority::new(1, 8)), &prios)?;
        // MultiQueue: only exact in the degenerate c = 1 single-place
        // configuration (one queue) — which is precisely the setup the
        // rank-error instrument self-validates against.
        check(Arc::new(RelaxedMultiQueue::new(1, 1)), &prios)?;
    }
}
