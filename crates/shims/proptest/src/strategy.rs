//! Sampling strategies and combinators.
//!
//! A [`Strategy`] is a recipe for generating values of one type from the
//! test RNG. Unlike real proptest there is no shrinking, so a strategy is
//! just a sampling function; all combinators compose sampling functions.

use crate::rng::TestRng;
use std::ops::Range;

/// A recipe for sampling values of type `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a second strategy from each generated value and samples it
    /// (dependent generation).
    fn prop_flat_map<U: Strategy, F: Fn(Self::Value) -> U>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Keeps only values for which `f` returns `Some`, resampling otherwise;
    /// gives up (panics) after many consecutive rejections.
    fn prop_filter_map<U, F: Fn(Self::Value) -> Option<U>>(
        self,
        whence: &'static str,
        f: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap {
            inner: self,
            whence,
            f,
        }
    }

    /// Like `prop_filter_map` but with a boolean predicate.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    /// Type-erases the strategy (needed by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe sampling, used behind [`BoxedStrategy`].
trait DynStrategy<T> {
    fn sample_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample_dyn(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Strategy, F: Fn(S::Value) -> U> Strategy for FlatMap<S, F> {
    type Value = U::Value;
    fn sample(&self, rng: &mut TestRng) -> U::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

const FILTER_RETRIES: usize = 10_000;

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> Option<U>> Strategy for FilterMap<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        for _ in 0..FILTER_RETRIES {
            if let Some(v) = (self.f)(self.inner.sample(rng)) {
                return v;
            }
        }
        panic!("prop_filter_map rejected every sample: {}", self.whence);
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..FILTER_RETRIES {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected every sample: {}", self.whence);
    }
}

/// Weighted union of same-valued strategies (built by [`crate::prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Builds a union; weights must sum to a positive value.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof needs positive total weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.sample(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights exhausted")
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128 - self.start as i128) as u128;
                assert!(span > 0, "empty range strategy");
                let off = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let x = (5u32..9).sample(&mut rng);
            assert!((5..9).contains(&x));
            let y = (-3i32..4).sample(&mut rng);
            assert!((-3..4).contains(&y));
            let f = (0.25f64..0.75).sample(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn union_honours_weights_roughly() {
        let mut rng = TestRng::new(2);
        let u = Union::new(vec![(9, Just(0u8).boxed()), (1, Just(1u8).boxed())]);
        let ones: u32 = (0..10_000).map(|_| u.sample(&mut rng) as u32).sum();
        assert!((500..2000).contains(&ones), "ones = {ones}");
    }
}
