//! The explorer runtime: a baton-passing scheduler over real OS threads,
//! a TSO (x86-style) store-buffer memory model, and a DFS over schedules.
//!
//! # Execution model
//!
//! Model threads are real OS threads, but only one — the *active* thread —
//! runs at any time. Before each visible operation (atomic access, fence,
//! cell access, mutex/condvar op, spawn/join/yield) the active thread
//! reaches a *decision point*: it computes the set of enabled actions and
//! consults the DFS trail to pick one. Actions are:
//!
//! - `Run(t)` — hand the baton to thread `t` (possibly itself),
//! - `Drain(t)` — flush the oldest entry of thread `t`'s store buffer to
//!   shared memory (models the asynchronous drain of a hardware store
//!   buffer),
//! - `TimeoutWake(t)` — fire the timeout of a thread blocked in
//!   `wait_timeout`.
//!
//! # Memory model (TSO)
//!
//! Non-SeqCst stores enter the storing thread's FIFO buffer; loads forward
//! from the thread's own buffer before reading shared memory. SeqCst
//! stores, SeqCst fences, read-modify-writes (any ordering), mutex
//! acquire/release, condvar wait, spawn, and thread exit flush the buffer.
//! `Drain` actions empty buffers one entry at a time at scheduler
//! discretion, so a Release store can stay invisible to other threads for
//! an arbitrary window — exactly the reordering x86 exhibits. Acquire and
//! Release need no additional modeling on TSO: loads are never reordered
//! with other loads, stores never with other stores.
//!
//! # Exploration
//!
//! Depth-first over the decision trail with a bounded number of
//! *preemptions* (switching away from a still-runnable thread); drains and
//! forced switches are free. Each completed schedule counts toward the
//! branch budget. On failure the full decision trail is printed and can be
//! replayed via `LOOM_REPLAY`.

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Condvar, Mutex, MutexGuard, OnceLock};

/// Marker payload used to unwind model threads when the execution aborts
/// (deadlock, budget, or another thread's panic). Propagated with
/// `resume_unwind` so the default panic hook stays silent.
struct AbortMarker;

/// A location / mutex / condvar id, tagged with the execution generation
/// that created it so stale objects from a previous execution are caught.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Loc {
    generation: u64,
    idx: usize,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Wait {
    /// Waiting to acquire mutex `idx`.
    Mutex(usize),
    /// Waiting on condvar `cv`; will reacquire `mutex` once woken.
    Condvar {
        cv: usize,
        mutex: usize,
        timed: bool,
    },
    /// Waiting for thread `t` to finish.
    Join(usize),
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Status {
    /// Runnable.
    Ready,
    /// Voluntarily yielded: runnable only when no `Ready` thread exists.
    Yielded,
    Blocked(Wait),
    Finished,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Action {
    Run(usize),
    Drain(usize),
    TimeoutWake(usize),
}

impl Action {
    fn token(self) -> String {
        match self {
            Action::Run(t) => format!("r{t}"),
            Action::Drain(t) => format!("d{t}"),
            Action::TimeoutWake(t) => format!("t{t}"),
        }
    }

    fn parse(tok: &str) -> Option<Action> {
        let (kind, num) = tok.split_at(1);
        let t: usize = num.parse().ok()?;
        match kind {
            "r" => Some(Action::Run(t)),
            "d" => Some(Action::Drain(t)),
            "t" => Some(Action::TimeoutWake(t)),
            _ => None,
        }
    }
}

struct ThreadState {
    status: Status,
    /// Set when the thread's `wait_timeout` was ended by a `TimeoutWake`.
    timed_out: bool,
    /// Timeout wakes consumed so far (bounded by the budget unless forced).
    timeout_wakes: usize,
}

/// One decision point in the DFS trail.
struct Frame {
    /// Number of enabled actions at this point (determinism check).
    n: usize,
    /// Index of the action taken this execution.
    chosen: usize,
    /// The action itself, for schedule printing.
    act: Action,
}

/// Exploration limits; see [`crate::Builder`] for the public knobs.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Cap on explored executions before the model panics.
    pub max_branches: u64,
    /// Preemption bound per execution.
    pub max_preemptions: usize,
    /// Per-execution operation budget (livelock backstop).
    pub max_steps: usize,
    /// Per-thread budget of explored timed-wait wakeups.
    pub timeout_wake_budget: usize,
    /// Print exploration statistics to stderr.
    pub log: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            max_branches: 50_000,
            max_preemptions: 2,
            max_steps: 10_000,
            timeout_wake_budget: 2,
            log: false,
        }
    }
}

struct RtState {
    /// True while a `model()` call is running.
    running: bool,
    generation: u64,
    cfg: Config,
    replay: Vec<Action>,
    replay_mode: bool,

    // Per-execution state.
    threads: Vec<ThreadState>,
    live: usize,
    active: usize,
    mem: Vec<u64>,
    buffers: Vec<VecDeque<(usize, u64)>>,
    mutex_owner: Vec<Option<usize>>,
    n_condvars: usize,
    preemptions: usize,
    steps: usize,
    depth: usize,
    abort: Option<String>,
    panic_payload: Option<Box<dyn Any + Send>>,
    os_handles: Vec<std::thread::JoinHandle<()>>,

    // Across executions of one model.
    frames: Vec<Frame>,
    executions: u64,
}

struct Rt {
    st: Mutex<RtState>,
    cv: Condvar,
}

static RT: OnceLock<Rt> = OnceLock::new();
/// Serializes concurrent `model()` calls (e.g. parallel `#[test]`s).
static MODEL_LOCK: OnceLock<Mutex<()>> = OnceLock::new();

thread_local! {
    static CURRENT: Cell<Option<usize>> = const { Cell::new(None) };
}

type Guard = MutexGuard<'static, RtState>;

fn rt() -> &'static Rt {
    RT.get_or_init(|| Rt {
        st: Mutex::new(RtState {
            running: false,
            generation: 0,
            cfg: Config::default(),
            replay: Vec::new(),
            replay_mode: false,
            threads: Vec::new(),
            live: 0,
            active: 0,
            mem: Vec::new(),
            buffers: Vec::new(),
            mutex_owner: Vec::new(),
            n_condvars: 0,
            preemptions: 0,
            steps: 0,
            depth: 0,
            abort: None,
            panic_payload: None,
            os_handles: Vec::new(),
            frames: Vec::new(),
            executions: 0,
        }),
        cv: Condvar::new(),
    })
}

fn lock_rt() -> Guard {
    // The state mutex gets poisoned whenever a decision point unwinds with
    // the guard held (abort propagation); that is routine here.
    rt().st.lock().unwrap_or_else(|e| e.into_inner())
}

fn cur() -> usize {
    CURRENT.with(|c| c.get()).expect(
        "loom primitive used outside a model thread; \
         wrap the code in loom::model(|| ...)",
    )
}

fn check_loc(st: &RtState, loc: Loc) {
    assert!(
        st.running && loc.generation == st.generation,
        "loom object used outside the execution that created it"
    );
}

/// True when operations must not schedule: either this thread is unwinding
/// (drop glue during a panic) or the whole execution is aborting. In this
/// mode operations complete immediately against shared memory so teardown
/// code (Drop impls walking atomic chains) stays well-defined.
fn passthrough(st: &RtState) -> bool {
    st.abort.is_some() || std::thread::panicking()
}

fn flush_buffer(st: &mut RtState, t: usize) {
    while let Some((loc, v)) = st.buffers[t].pop_front() {
        st.mem[loc] = v;
    }
}

fn contend(st: &mut RtState, t: usize, m: usize) {
    st.threads[t].status = if st.mutex_owner[m].is_none() {
        Status::Ready
    } else {
        Status::Blocked(Wait::Mutex(m))
    };
}

fn abort_with(st: &mut RtState, msg: String) -> ! {
    if st.abort.is_none() {
        st.abort = Some(msg);
    }
    rt().cv.notify_all();
    panic::resume_unwind(Box::new(AbortMarker))
}

fn schedule_string(st: &RtState) -> String {
    st.frames[..st.depth.min(st.frames.len())]
        .iter()
        .map(|f| f.act.token())
        .collect::<Vec<_>>()
        .join(" ")
}

/// Enabled actions at a decision point where `me` is the decider.
fn enabled_actions(st: &RtState, me: usize) -> Vec<Action> {
    let me_ready = matches!(st.threads[me].status, Status::Ready);
    let cap_hit = st.preemptions >= st.cfg.max_preemptions;
    let mut acts = Vec::new();

    if cap_hit && me_ready {
        // No preemption budget left: the decider must keep running, but
        // other threads' buffered stores may still land under it.
        acts.push(Action::Run(me));
    } else {
        let any_ready = st.threads.iter().any(|t| matches!(t.status, Status::Ready));
        for (i, t) in st.threads.iter().enumerate() {
            match t.status {
                Status::Ready => acts.push(Action::Run(i)),
                // A yielded thread runs only when nothing else can.
                Status::Yielded if !any_ready => acts.push(Action::Run(i)),
                _ => {}
            }
        }
    }

    // The decider's own drains are invisible to it (store forwarding) and
    // remain available at every other thread's decision points, so they
    // are pruned here without losing schedules.
    for (i, b) in st.buffers.iter().enumerate() {
        if i != me && !b.is_empty() {
            acts.push(Action::Drain(i));
        }
    }

    if !(cap_hit && me_ready) {
        for (i, t) in st.threads.iter().enumerate() {
            if let Status::Blocked(Wait::Condvar { timed: true, .. }) = t.status {
                if t.timeout_wakes < st.cfg.timeout_wake_budget {
                    acts.push(Action::TimeoutWake(i));
                }
            }
        }
    }

    if acts.is_empty() {
        // Timed waiters always wake eventually; past the budget the wake
        // is forced rather than explored, which keeps timeout-based
        // protocols live without unbounded branching.
        for (i, t) in st.threads.iter().enumerate() {
            if let Status::Blocked(Wait::Condvar { timed: true, .. }) = t.status {
                acts.push(Action::TimeoutWake(i));
            }
        }
    }

    acts
}

/// Consult the DFS trail (or the replay schedule) for the action to take.
fn pick(st: &mut RtState, enabled: &[Action]) -> Action {
    let i = st.depth;
    st.depth += 1;
    if i < st.frames.len() {
        if st.frames[i].n != enabled.len() {
            abort_with(
                st,
                format!(
                    "nondeterministic model: decision point {i} had {} enabled \
                     actions on a previous execution but {} now; model code \
                     must not depend on wall-clock time or randomness",
                    st.frames[i].n,
                    enabled.len()
                ),
            );
        }
        let chosen = st.frames[i].chosen;
        st.frames[i].act = enabled[chosen];
        return enabled[chosen];
    }
    let chosen = if st.replay_mode && i < st.replay.len() {
        match enabled.iter().position(|a| *a == st.replay[i]) {
            Some(p) => p,
            None => abort_with(
                st,
                format!(
                    "LOOM_REPLAY diverged at decision {i}: token {} not among \
                     the enabled actions",
                    st.replay[i].token()
                ),
            ),
        }
    } else {
        0
    };
    st.frames.push(Frame {
        n: enabled.len(),
        chosen,
        act: enabled[chosen],
    });
    enabled[chosen]
}

/// Run decisions until a `Run` target is selected; applies drains and
/// timeout wakes inline. Returns the chosen thread.
fn decide_to_run(st: &mut RtState, me: usize) -> usize {
    loop {
        let enabled = enabled_actions(st, me);
        if enabled.is_empty() {
            let detail: Vec<String> = st
                .threads
                .iter()
                .enumerate()
                .map(|(i, t)| format!("thread {i}: {:?}", t.status))
                .collect();
            abort_with(
                st,
                format!("deadlock: no runnable thread\n  {}", detail.join("\n  ")),
            );
        }
        match pick(st, &enabled) {
            Action::Drain(t) => {
                let (loc, v) = st.buffers[t].pop_front().expect("drain of empty buffer");
                st.mem[loc] = v;
            }
            Action::TimeoutWake(t) => {
                st.threads[t].timed_out = true;
                st.threads[t].timeout_wakes += 1;
                if let Status::Blocked(Wait::Condvar { mutex, .. }) = st.threads[t].status {
                    contend(st, t, mutex);
                }
            }
            Action::Run(t) => {
                if t != me && matches!(st.threads[me].status, Status::Ready) {
                    st.preemptions += 1;
                }
                if matches!(st.threads[t].status, Status::Yielded) {
                    st.threads[t].status = Status::Ready;
                }
                return t;
            }
        }
    }
}

fn wait_baton(mut st: Guard, me: usize) -> Guard {
    loop {
        if st.abort.is_some() {
            drop(st);
            panic::resume_unwind(Box::new(AbortMarker));
        }
        if st.active == me && matches!(st.threads[me].status, Status::Ready) {
            return st;
        }
        st = rt().cv.wait(st).unwrap_or_else(|e| e.into_inner());
    }
}

/// Hand the baton to some other thread (the decider `me` is blocked,
/// yielded, or chose to switch) and wait to be scheduled again.
fn yield_to_other(mut st: Guard, me: usize) -> Guard {
    let next = decide_to_run(&mut st, me);
    if next == me {
        return st;
    }
    st.active = next;
    rt().cv.notify_all();
    wait_baton(st, me)
}

/// Decision point before a visible operation. Returns with the state lock
/// held, this thread active, and the operation free to proceed.
fn op_point() -> Guard {
    let me = cur();
    let mut st = lock_rt();
    if std::thread::panicking() {
        return st;
    }
    if st.abort.is_some() {
        drop(st);
        panic::resume_unwind(Box::new(AbortMarker));
    }
    st.steps += 1;
    if st.steps > st.cfg.max_steps {
        let msg = format!(
            "step budget exceeded ({} ops in one execution): livelock, or \
             raise LOOM_MAX_STEPS",
            st.cfg.max_steps
        );
        abort_with(&mut st, msg);
    }
    yield_to_other(st, me)
}

// ---------------------------------------------------------------------------
// Atomics
// ---------------------------------------------------------------------------

pub(crate) fn atomic_register(init: u64) -> Loc {
    let mut st = lock_rt();
    assert!(
        st.running,
        "loom primitive created outside loom::model(|| ...)"
    );
    st.mem.push(init);
    Loc {
        generation: st.generation,
        idx: st.mem.len() - 1,
    }
}

pub(crate) fn atomic_load(loc: Loc, _order: Ordering) -> u64 {
    let me = cur();
    let st = op_point();
    check_loc(&st, loc);
    // Store forwarding: newest own-buffer entry for this location wins.
    if let Some(&(_, v)) = st.buffers[me].iter().rev().find(|&&(l, _)| l == loc.idx) {
        return v;
    }
    st.mem[loc.idx]
}

pub(crate) fn atomic_store(loc: Loc, v: u64, order: Ordering) {
    let me = cur();
    let mut st = op_point();
    check_loc(&st, loc);
    if matches!(order, Ordering::SeqCst) || passthrough(&st) {
        flush_buffer(&mut st, me);
        st.mem[loc.idx] = v;
    } else {
        st.buffers[me].push_back((loc.idx, v));
    }
}

pub(crate) fn atomic_rmw(loc: Loc, f: impl FnOnce(u64) -> u64) -> u64 {
    let me = cur();
    let mut st = op_point();
    check_loc(&st, loc);
    flush_buffer(&mut st, me);
    let old = st.mem[loc.idx];
    st.mem[loc.idx] = f(old);
    old
}

pub(crate) fn atomic_cas(loc: Loc, expected: u64, new: u64) -> Result<u64, u64> {
    let me = cur();
    let mut st = op_point();
    check_loc(&st, loc);
    flush_buffer(&mut st, me);
    let curval = st.mem[loc.idx];
    if curval == expected {
        st.mem[loc.idx] = new;
        Ok(curval)
    } else {
        Err(curval)
    }
}

/// `into_inner`-style read with exclusive access: every buffer is flushed
/// first so the result reflects all stores from all threads.
pub(crate) fn atomic_unsync_read(loc: Loc) -> u64 {
    let mut st = lock_rt();
    check_loc(&st, loc);
    for t in 0..st.buffers.len() {
        flush_buffer(&mut st, t);
    }
    st.mem[loc.idx]
}

pub(crate) fn fence(order: Ordering) {
    let me = cur();
    let mut st = op_point();
    if matches!(order, Ordering::SeqCst) {
        flush_buffer(&mut st, me);
    }
}

/// Decision point for a `loom::cell::UnsafeCell` access. The data itself
/// lives natively (immediately visible); the point exists so schedules can
/// preempt between a cell write and neighbouring atomic publishes.
pub(crate) fn cell_access() {
    drop(op_point());
}

// ---------------------------------------------------------------------------
// Mutex / Condvar
// ---------------------------------------------------------------------------

pub(crate) fn mutex_register() -> Loc {
    let mut st = lock_rt();
    assert!(
        st.running,
        "loom primitive created outside loom::model(|| ...)"
    );
    st.mutex_owner.push(None);
    Loc {
        generation: st.generation,
        idx: st.mutex_owner.len() - 1,
    }
}

pub(crate) fn mutex_lock(m: Loc) {
    let me = cur();
    let mut st = op_point();
    check_loc(&st, m);
    if passthrough(&st) {
        st.mutex_owner[m.idx] = Some(me);
        return;
    }
    loop {
        if st.mutex_owner[m.idx].is_none() {
            st.mutex_owner[m.idx] = Some(me);
            flush_buffer(&mut st, me);
            return;
        }
        assert_ne!(
            st.mutex_owner[m.idx],
            Some(me),
            "deadlock: recursive lock of a loom mutex"
        );
        st.threads[me].status = Status::Blocked(Wait::Mutex(m.idx));
        st = yield_to_other(st, me);
    }
}

pub(crate) fn mutex_try_lock(m: Loc) -> bool {
    let me = cur();
    let mut st = op_point();
    check_loc(&st, m);
    if st.mutex_owner[m.idx].is_none() {
        st.mutex_owner[m.idx] = Some(me);
        flush_buffer(&mut st, me);
        true
    } else {
        false
    }
}

/// Not a decision point: runs in drop glue, possibly mid-unwind.
pub(crate) fn mutex_unlock(m: Loc) {
    let Some(me) = CURRENT.with(|c| c.get()) else {
        return;
    };
    let mut st = lock_rt();
    if !st.running || m.generation != st.generation {
        return;
    }
    st.mutex_owner[m.idx] = None;
    flush_buffer(&mut st, me);
    for t in st.threads.iter_mut() {
        if t.status == Status::Blocked(Wait::Mutex(m.idx)) {
            t.status = Status::Ready;
        }
    }
    rt().cv.notify_all();
}

pub(crate) fn condvar_register() -> Loc {
    let mut st = lock_rt();
    assert!(
        st.running,
        "loom primitive created outside loom::model(|| ...)"
    );
    st.n_condvars += 1;
    Loc {
        generation: st.generation,
        idx: st.n_condvars - 1,
    }
}

/// Release `m`, wait on `cv`, reacquire `m`. Returns whether the wait
/// ended via `TimeoutWake` (only possible when `timed`).
pub(crate) fn condvar_wait(cv: Loc, m: Loc, timed: bool) -> bool {
    let me = cur();
    let mut st = op_point();
    check_loc(&st, cv);
    check_loc(&st, m);
    if passthrough(&st) {
        return true;
    }
    debug_assert_eq!(st.mutex_owner[m.idx], Some(me), "wait without the lock");
    st.mutex_owner[m.idx] = None;
    flush_buffer(&mut st, me);
    for t in st.threads.iter_mut() {
        if t.status == Status::Blocked(Wait::Mutex(m.idx)) {
            t.status = Status::Ready;
        }
    }
    st.threads[me].timed_out = false;
    st.threads[me].status = Status::Blocked(Wait::Condvar {
        cv: cv.idx,
        mutex: m.idx,
        timed,
    });
    st = yield_to_other(st, me);
    // Scheduled again: reacquire the mutex.
    loop {
        if st.mutex_owner[m.idx].is_none() {
            st.mutex_owner[m.idx] = Some(me);
            flush_buffer(&mut st, me);
            break;
        }
        st.threads[me].status = Status::Blocked(Wait::Mutex(m.idx));
        st = yield_to_other(st, me);
    }
    let timed_out = st.threads[me].timed_out;
    st.threads[me].timed_out = false;
    timed_out
}

pub(crate) fn condvar_notify(cv: Loc, all: bool) {
    let mut st = op_point();
    check_loc(&st, cv);
    let waiters: Vec<(usize, usize)> = st
        .threads
        .iter()
        .enumerate()
        .filter_map(|(i, t)| match t.status {
            Status::Blocked(Wait::Condvar { cv: c, mutex, .. }) if c == cv.idx => Some((i, mutex)),
            _ => None,
        })
        .collect();
    for (i, mutex) in waiters {
        contend(&mut st, i, mutex);
        if !all {
            break;
        }
    }
}

// ---------------------------------------------------------------------------
// Threads
// ---------------------------------------------------------------------------

pub(crate) fn yield_now() {
    let me = cur();
    let mut st = lock_rt();
    if std::thread::panicking() {
        return;
    }
    if st.abort.is_some() {
        drop(st);
        panic::resume_unwind(Box::new(AbortMarker));
    }
    st.steps += 1;
    if st.steps > st.cfg.max_steps {
        let msg = format!(
            "step budget exceeded ({} ops in one execution): livelock, or \
             raise LOOM_MAX_STEPS",
            st.cfg.max_steps
        );
        abort_with(&mut st, msg);
    }
    st.threads[me].status = Status::Yielded;
    let st = yield_to_other(st, me);
    drop(st);
}

fn alloc_thread(st: &mut RtState) -> usize {
    st.threads.push(ThreadState {
        status: Status::Ready,
        timed_out: false,
        timeout_wakes: 0,
    });
    st.buffers.push(VecDeque::new());
    st.live += 1;
    st.threads.len() - 1
}

fn thread_main(id: usize, body: Box<dyn FnOnce() + Send>) {
    CURRENT.with(|c| c.set(Some(id)));
    let res = panic::catch_unwind(AssertUnwindSafe(|| {
        let st = lock_rt();
        let st = wait_baton(st, id);
        drop(st);
        body();
    }));
    // Exit path: never unwind out of here; a deadlock discovered while
    // passing the baton on is recorded in `abort` before the marker flies.
    // Exit is a visible operation: other threads may run between this
    // thread's last op and its terminal buffer flush (otherwise a
    // store-buffered value could never be observed stale by a thread
    // scheduled after us). Run it under its own catch so an abort raised
    // while we wait for the baton cannot skip the exit bookkeeping below.
    if res.is_ok() {
        let _ = panic::catch_unwind(AssertUnwindSafe(|| {
            let st = lock_rt();
            if st.abort.is_none() && !st.buffers[id].is_empty() {
                drop(yield_to_other(st, id));
            }
        }));
    }
    let _ = panic::catch_unwind(AssertUnwindSafe(|| {
        let mut st = lock_rt();
        if let Err(p) = res {
            if !p.is::<AbortMarker>() && st.abort.is_none() {
                st.abort = Some("a model thread panicked".to_string());
                st.panic_payload = Some(p);
            }
        }
        st.threads[id].status = Status::Finished;
        flush_buffer(&mut st, id);
        for t in st.threads.iter_mut() {
            if t.status == Status::Blocked(Wait::Join(id)) {
                t.status = Status::Ready;
            }
        }
        st.live -= 1;
        if st.abort.is_some() || st.live == 0 {
            rt().cv.notify_all();
            return;
        }
        let next = decide_to_run(&mut st, id);
        st.active = next;
        rt().cv.notify_all();
    }));
}

/// Spawn a model thread from within the model (a visible operation).
pub(crate) fn spawn_model(body: Box<dyn FnOnce() + Send>) -> usize {
    let me = cur();
    let mut st = op_point();
    // Spawn synchronizes-with the child's first operation.
    flush_buffer(&mut st, me);
    let id = alloc_thread(&mut st);
    let h = std::thread::Builder::new()
        .name(format!("loom-{id}"))
        .spawn(move || thread_main(id, body))
        .expect("spawn model thread");
    st.os_handles.push(h);
    id
}

pub(crate) fn join_model(t: usize) {
    let me = cur();
    let mut st = op_point();
    if passthrough(&st) {
        return;
    }
    while !matches!(st.threads[t].status, Status::Finished) {
        st.threads[me].status = Status::Blocked(Wait::Join(t));
        st = yield_to_other(st, me);
    }
}

// ---------------------------------------------------------------------------
// Orchestration
// ---------------------------------------------------------------------------

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

fn reset_execution(st: &mut RtState) {
    st.generation += 1;
    st.threads.clear();
    st.buffers.clear();
    st.mem.clear();
    st.mutex_owner.clear();
    st.n_condvars = 0;
    st.live = 0;
    st.active = 0;
    st.preemptions = 0;
    st.steps = 0;
    st.depth = 0;
    st.abort = None;
    st.panic_payload = None;
}

/// Explore every schedule of `f` within the configured bounds.
pub fn model_with(mut cfg: Config, f: impl Fn() + Send + Sync + 'static) {
    let _serial = MODEL_LOCK
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner());

    if let Some(v) = env_u64("LOOM_MAX_BRANCHES") {
        cfg.max_branches = v;
    }
    if let Some(v) = env_u64("LOOM_MAX_PREEMPTIONS") {
        cfg.max_preemptions = v as usize;
    }
    if let Some(v) = env_u64("LOOM_MAX_STEPS") {
        cfg.max_steps = v as usize;
    }
    if let Some(v) = env_u64("LOOM_TIMEOUT_WAKES") {
        cfg.timeout_wake_budget = v as usize;
    }
    if std::env::var("LOOM_LOG").is_ok() {
        cfg.log = true;
    }
    let replay: Vec<Action> = match std::env::var("LOOM_REPLAY") {
        Ok(s) => s
            .split_whitespace()
            .map(|tok| Action::parse(tok).expect("malformed LOOM_REPLAY token"))
            .collect(),
        Err(_) => Vec::new(),
    };

    let f = std::sync::Arc::new(f);
    {
        let mut st = lock_rt();
        assert!(!st.running, "nested loom::model calls are not supported");
        st.running = true;
        st.cfg = cfg;
        st.replay_mode = !replay.is_empty();
        st.replay = replay;
        st.frames.clear();
        st.executions = 0;
    }

    loop {
        // Launch one execution: thread 0 runs the closure.
        {
            let mut st = lock_rt();
            reset_execution(&mut st);
            let id = alloc_thread(&mut st);
            debug_assert_eq!(id, 0);
            st.active = 0;
            let body = f.clone();
            let h = std::thread::Builder::new()
                .name("loom-0".to_string())
                .spawn(move || thread_main(0, Box::new(move || body())))
                .expect("spawn model thread");
            st.os_handles.push(h);
        }
        rt().cv.notify_all();

        // Wait for the execution to finish (normally or by abort).
        let handles = {
            let mut st = lock_rt();
            while st.live > 0 {
                st = rt().cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            std::mem::take(&mut st.os_handles)
        };
        for h in handles {
            let _ = h.join();
        }

        let mut st = lock_rt();
        st.executions += 1;

        if st.abort.is_some() {
            let sched = schedule_string(&st);
            let msg = st.abort.take().unwrap_or_default();
            let execs = st.executions;
            eprintln!("\n====================== loom: model failed ======================");
            eprintln!("cause: {msg}");
            eprintln!("executions explored: {execs}");
            eprintln!("failing schedule ({} decisions):", sched.split(' ').count());
            eprintln!("  {sched}");
            eprintln!("replay with: LOOM_REPLAY=\"{sched}\" (plus the same RUSTFLAGS/test filter)");
            eprintln!("================================================================\n");
            st.running = false;
            let payload = st.panic_payload.take();
            drop(st);
            match payload {
                Some(p) => panic::resume_unwind(p),
                None => panic!("loom model failed: {msg}"),
            }
        }

        if st.replay_mode {
            st.running = false;
            if st.cfg.log {
                eprintln!("loom: replay execution completed without failure");
            }
            return;
        }

        if st.executions >= st.cfg.max_branches {
            let execs = st.executions;
            st.running = false;
            drop(st);
            panic!(
                "loom: branch budget exceeded ({execs} executions); raise \
                 LOOM_MAX_BRANCHES or shrink the model"
            );
        }

        debug_assert_eq!(st.frames.len(), st.depth, "trail length mismatch");
        let depth = st.depth;
        st.frames.truncate(depth);
        // Backtrack to the deepest decision with an unexplored branch.
        loop {
            match st.frames.last_mut() {
                None => {
                    let execs = st.executions;
                    st.running = false;
                    if st.cfg.log {
                        eprintln!("loom: exploration complete after {execs} executions");
                    }
                    return;
                }
                Some(fr) => {
                    if fr.chosen + 1 < fr.n {
                        fr.chosen += 1;
                        break;
                    }
                    st.frames.pop();
                }
            }
        }
    }
}
