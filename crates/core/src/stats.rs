//! Lightweight instrumentation counters.
//!
//! Every place handle keeps plain (non-atomic) counters on its hot path and
//! folds them into a [`PlaceStats`] snapshot on request; the scheduler
//! aggregates snapshots across places into the run statistics reported by
//! the figure harness (nodes relaxed, dead tasks, steal/spy activity, …).

/// Per-place operation counters.
///
/// All fields count events observed by one place (thread). Aggregate with
/// [`PlaceStats::merge`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlaceStats {
    /// Tasks pushed by this place.
    pub pushes: u64,
    /// Tasks successfully popped (and owned) by this place.
    pub pops: u64,
    /// `pop` calls that returned nothing.
    pub failed_pops: u64,
    /// Take attempts that lost the CAS/TAS race (dead references noticed).
    pub stale_refs: u64,
    /// Steal-half operations that obtained at least one task (work-stealing).
    pub steals: u64,
    /// Spy operations that found at least one reference (hybrid).
    pub spies: u64,
    /// Local lists published to the global list (hybrid).
    pub publishes: u64,
    /// Items taken through the random fallback probe (centralized).
    pub probe_hits: u64,
    /// Global-array/global-list entries ingested into the local queue.
    pub ingested: u64,
    /// Flat-combining passes this place ran that served at least one
    /// delegated op (structural, combining on).
    pub combine_passes: u64,
    /// Shared-queue ops this place executed while holding the combiner
    /// lock — its own plus delegated ones. `combine_ops / combine_passes`
    /// approximates the ops-per-pass mean.
    pub combine_ops: u64,
    /// Most delegated ops this place served in a single combining pass.
    /// Aggregates with `max`, not `+`.
    pub combine_pass_max: u64,
    /// Times this place parked waiting for a combiner response.
    pub combine_parks: u64,
}

impl PlaceStats {
    /// Element-wise sum — except [`PlaceStats::combine_pass_max`], which
    /// takes the maximum (it is a high-water mark, not a count).
    pub fn merge(&mut self, other: &PlaceStats) {
        self.pushes += other.pushes;
        self.pops += other.pops;
        self.failed_pops += other.failed_pops;
        self.stale_refs += other.stale_refs;
        self.steals += other.steals;
        self.spies += other.spies;
        self.publishes += other.publishes;
        self.probe_hits += other.probe_hits;
        self.ingested += other.ingested;
        self.combine_passes += other.combine_passes;
        self.combine_ops += other.combine_ops;
        self.combine_pass_max = self.combine_pass_max.max(other.combine_pass_max);
        self.combine_parks += other.combine_parks;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_fields() {
        let mut a = PlaceStats {
            pushes: 1,
            pops: 2,
            failed_pops: 3,
            stale_refs: 4,
            steals: 5,
            spies: 6,
            publishes: 7,
            probe_hits: 8,
            ingested: 9,
            combine_passes: 10,
            combine_ops: 11,
            combine_pass_max: 12,
            combine_parks: 13,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.pushes, 2);
        assert_eq!(a.pops, 4);
        assert_eq!(a.ingested, 18);
        assert_eq!(a.combine_passes, 20);
        assert_eq!(a.combine_ops, 22);
        assert_eq!(a.combine_parks, 26);
    }

    #[test]
    fn merge_takes_max_of_pass_high_water_mark() {
        let mut a = PlaceStats {
            combine_pass_max: 3,
            ..PlaceStats::default()
        };
        a.merge(&PlaceStats {
            combine_pass_max: 7,
            ..PlaceStats::default()
        });
        assert_eq!(a.combine_pass_max, 7);
        a.merge(&PlaceStats {
            combine_pass_max: 2,
            ..PlaceStats::default()
        });
        assert_eq!(a.combine_pass_max, 7);
    }
}
