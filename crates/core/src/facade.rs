//! Runtime pool construction — the one place a [`PoolKind`] becomes a pool.
//!
//! Harnesses, examples, and tests all want the same thing: "give me a pool
//! of *this* kind for *P* places with *these* parameters". Before this
//! module, every one of them carried its own per-kind `match PoolKind`
//! block; now they either
//!
//! * call [`run_on_kind`] (or [`PoolBuilder::run`]) when they just want to
//!   schedule an executor — dispatch happens **once**, before the run, and
//!   the whole scheduling loop stays monomorphized per structure exactly as
//!   if the concrete type had been named; or
//! * call [`PoolKind::build`] / [`PoolBuilder::build`] when they need to
//!   drive place handles themselves (lockstep runners, throughput benches)
//!   and receive an [`AnyPool`] — a thin enum over the five structures
//!   whose [`PoolHandle`] forwards every operation, including the batched
//!   ones, to the wrapped handle. The per-operation cost is one predictable
//!   branch.
//!
//! Construction semantics are fixed here once: the centralized structure
//! consumes [`PoolParams::kmax`], the structural prototype consumes
//! [`PoolParams::k`], the MultiQueue consumes [`PoolParams::mq_c`] /
//! [`PoolParams::mq_stickiness`] / [`PoolParams::rank_error`], and the
//! other two take only the place count — a caller can no longer forget
//! one of those knobs (which is exactly how `kmax` used to silently
//! default in hand-rolled match blocks).

use crate::centralized::{CentralizedHandle, CentralizedKPriority};
use crate::hybrid::{HybridHandle, HybridKPriority};
use crate::ingest::IngressLanes;
use crate::multiqueue::{MultiQueueHandle, RelaxedMultiQueue};
use crate::pool::{PoolHandle, PoolKind, PoolParams, TaskPool};
use crate::scheduler::{RunStats, Scheduler, TaskExecutor};
use crate::service::PoolService;
use crate::stats::PlaceStats;
use crate::structural::{StructuralHandle, StructuralKPriority};
use crate::workstealing::{PriorityWorkStealing, WorkStealingHandle};
use std::sync::Arc;

/// A [`TaskPool`] of any of the five structures, selected at runtime.
///
/// Obtained from [`PoolKind::build`]. Useful when the caller needs the pool
/// itself (handle-level drivers); when the pool is only scheduled over,
/// prefer [`run_on_kind`], which never erases the type at all.
pub enum AnyPool<T: Send + 'static> {
    /// §3.1 work-stealing.
    WorkStealing(Arc<PriorityWorkStealing<T>>),
    /// §3.2/§4.1 centralized k-priority.
    Centralized(Arc<CentralizedKPriority<T>>),
    /// §3.3/§4.2 hybrid k-priority.
    Hybrid(Arc<HybridKPriority<T>>),
    /// §5.3 structural prototype.
    Structural(Arc<StructuralKPriority<T>>),
    /// Relaxed MultiQueue (arXiv 2109.00657).
    MultiQueue(Arc<RelaxedMultiQueue<T>>),
}

impl<T: Send + 'static> AnyPool<T> {
    /// The kind this pool was built as.
    pub fn kind(&self) -> PoolKind {
        match self {
            AnyPool::WorkStealing(_) => PoolKind::WorkStealing,
            AnyPool::Centralized(_) => PoolKind::Centralized,
            AnyPool::Hybrid(_) => PoolKind::Hybrid,
            AnyPool::Structural(_) => PoolKind::Structural,
            AnyPool::MultiQueue(_) => PoolKind::MultiQueue,
        }
    }
}

/// One place's view of an [`AnyPool`]; forwards every operation — scalar
/// and batched — to the wrapped concrete handle.
pub enum AnyHandle<T: Send + 'static> {
    /// Handle of [`PriorityWorkStealing`].
    WorkStealing(WorkStealingHandle<T>),
    /// Handle of [`CentralizedKPriority`].
    Centralized(CentralizedHandle<T>),
    /// Handle of [`HybridKPriority`].
    Hybrid(HybridHandle<T>),
    /// Handle of [`StructuralKPriority`].
    Structural(StructuralHandle<T>),
    /// Handle of [`RelaxedMultiQueue`].
    MultiQueue(MultiQueueHandle<T>),
}

impl<T: Send + 'static> TaskPool<T> for AnyPool<T> {
    type Handle = AnyHandle<T>;

    fn num_places(&self) -> usize {
        match self {
            AnyPool::WorkStealing(p) => p.num_places(),
            AnyPool::Centralized(p) => p.num_places(),
            AnyPool::Hybrid(p) => p.num_places(),
            AnyPool::Structural(p) => p.num_places(),
            AnyPool::MultiQueue(p) => p.num_places(),
        }
    }

    fn handle(self: &Arc<Self>, place: usize) -> AnyHandle<T> {
        match &**self {
            AnyPool::WorkStealing(p) => AnyHandle::WorkStealing(p.handle(place)),
            AnyPool::Centralized(p) => AnyHandle::Centralized(p.handle(place)),
            AnyPool::Hybrid(p) => AnyHandle::Hybrid(p.handle(place)),
            AnyPool::Structural(p) => AnyHandle::Structural(p.handle(place)),
            AnyPool::MultiQueue(p) => AnyHandle::MultiQueue(p.handle(place)),
        }
    }
}

impl<T: Send + 'static> PoolHandle<T> for AnyHandle<T> {
    fn push(&mut self, prio: u64, k: usize, task: T) {
        match self {
            AnyHandle::WorkStealing(h) => h.push(prio, k, task),
            AnyHandle::Centralized(h) => h.push(prio, k, task),
            AnyHandle::Hybrid(h) => h.push(prio, k, task),
            AnyHandle::Structural(h) => h.push(prio, k, task),
            AnyHandle::MultiQueue(h) => h.push(prio, k, task),
        }
    }

    fn pop_entry(&mut self) -> Option<(u64, T)> {
        match self {
            AnyHandle::WorkStealing(h) => h.pop_entry(),
            AnyHandle::Centralized(h) => h.pop_entry(),
            AnyHandle::Hybrid(h) => h.pop_entry(),
            AnyHandle::Structural(h) => h.pop_entry(),
            AnyHandle::MultiQueue(h) => h.pop_entry(),
        }
    }

    fn push_batch(&mut self, k: usize, batch: &mut Vec<(u64, T)>) {
        match self {
            AnyHandle::WorkStealing(h) => h.push_batch(k, batch),
            AnyHandle::Centralized(h) => h.push_batch(k, batch),
            AnyHandle::Hybrid(h) => h.push_batch(k, batch),
            AnyHandle::Structural(h) => h.push_batch(k, batch),
            AnyHandle::MultiQueue(h) => h.push_batch(k, batch),
        }
    }

    fn try_pop_batch(&mut self, out: &mut Vec<T>, max: usize) -> usize {
        match self {
            AnyHandle::WorkStealing(h) => h.try_pop_batch(out, max),
            AnyHandle::Centralized(h) => h.try_pop_batch(out, max),
            AnyHandle::Hybrid(h) => h.try_pop_batch(out, max),
            AnyHandle::Structural(h) => h.try_pop_batch(out, max),
            AnyHandle::MultiQueue(h) => h.try_pop_batch(out, max),
        }
    }

    fn stats(&self) -> PlaceStats {
        match self {
            AnyHandle::WorkStealing(h) => h.stats(),
            AnyHandle::Centralized(h) => h.stats(),
            AnyHandle::Hybrid(h) => h.stats(),
            AnyHandle::Structural(h) => h.stats(),
            AnyHandle::MultiQueue(h) => h.stats(),
        }
    }
}

impl PoolKind {
    /// Builds a pool of this kind for `places` places.
    ///
    /// The parameter routing is the contract: `params.kmax` configures the
    /// centralized structure, `params.k` the structural prototype,
    /// `params.mq_c`/`params.mq_stickiness`/`params.rank_error` the
    /// MultiQueue; work-stealing and hybrid take only the place count
    /// (their relaxation behaviour is governed by the per-task `k` of
    /// each push).
    pub fn build<T: Send + 'static>(self, places: usize, params: PoolParams) -> AnyPool<T> {
        match self {
            PoolKind::WorkStealing => {
                AnyPool::WorkStealing(Arc::new(PriorityWorkStealing::new(places)))
            }
            PoolKind::Centralized => {
                AnyPool::Centralized(Arc::new(CentralizedKPriority::new(places, params.kmax)))
            }
            PoolKind::Hybrid => AnyPool::Hybrid(Arc::new(HybridKPriority::new(places))),
            PoolKind::Structural => AnyPool::Structural(Arc::new(
                StructuralKPriority::with_combining(places, params.k, params.combine),
            )),
            PoolKind::MultiQueue => {
                AnyPool::MultiQueue(Arc::new(RelaxedMultiQueue::from_params(places, &params)))
            }
        }
    }
}

/// Runs `executor` over `roots` on a freshly built pool of `kind`.
///
/// Dispatch happens once, here: each arm monomorphizes
/// [`Scheduler::run`] against the concrete structure, so the scheduling
/// loop's codegen is identical to naming the type by hand — wall-clock
/// measurements through this helper are comparable with older harnesses
/// that carried their own match blocks.
pub fn run_on_kind<T, E>(
    kind: PoolKind,
    places: usize,
    params: PoolParams,
    executor: &E,
    roots: Vec<(u64, usize, T)>,
) -> RunStats
where
    T: Send + 'static,
    E: TaskExecutor<T>,
{
    let policy = params.fault_policy;
    match kind {
        PoolKind::WorkStealing => Scheduler::from_pool(PriorityWorkStealing::new(places))
            .with_fault_policy(policy)
            .run(executor, roots),
        PoolKind::Centralized => {
            Scheduler::from_pool(CentralizedKPriority::new(places, params.kmax))
                .with_fault_policy(policy)
                .run(executor, roots)
        }
        PoolKind::Hybrid => Scheduler::from_pool(HybridKPriority::new(places))
            .with_fault_policy(policy)
            .run(executor, roots),
        PoolKind::Structural => Scheduler::from_pool(StructuralKPriority::with_combining(
            places,
            params.k,
            params.combine,
        ))
        .with_fault_policy(policy)
        .run(executor, roots),
        PoolKind::MultiQueue => {
            Scheduler::from_pool(RelaxedMultiQueue::from_params(places, &params))
                .with_fault_policy(policy)
                .run(executor, roots)
        }
    }
}

/// Streamed sibling of [`run_on_kind`]: runs `executor` over `roots` *plus*
/// everything submitted through `ingress` handles while the pool drains,
/// returning at quiescence (see [`Scheduler::run_stream`]).
///
/// Like [`run_on_kind`], dispatch happens once, before the run — every arm
/// monomorphizes `run_stream` against the concrete structure, so all five
/// structures get the streamed lifecycle with zero per-operation cost.
pub fn run_stream_on_kind<T, E>(
    kind: PoolKind,
    places: usize,
    params: PoolParams,
    executor: &E,
    roots: Vec<(u64, usize, T)>,
    ingress: &IngressLanes<T>,
) -> RunStats
where
    T: Send + 'static,
    E: TaskExecutor<T>,
{
    let policy = params.fault_policy;
    match kind {
        PoolKind::WorkStealing => Scheduler::from_pool(PriorityWorkStealing::new(places))
            .with_fault_policy(policy)
            .run_stream(executor, roots, ingress),
        PoolKind::Centralized => {
            Scheduler::from_pool(CentralizedKPriority::new(places, params.kmax))
                .with_fault_policy(policy)
                .run_stream(executor, roots, ingress)
        }
        PoolKind::Hybrid => Scheduler::from_pool(HybridKPriority::new(places))
            .with_fault_policy(policy)
            .run_stream(executor, roots, ingress),
        PoolKind::Structural => Scheduler::from_pool(StructuralKPriority::with_combining(
            places,
            params.k,
            params.combine,
        ))
        .with_fault_policy(policy)
        .run_stream(executor, roots, ingress),
        PoolKind::MultiQueue => {
            Scheduler::from_pool(RelaxedMultiQueue::from_params(places, &params))
                .with_fault_policy(policy)
                .run_stream(executor, roots, ingress)
        }
    }
}

/// Fluent front door over [`PoolKind::build`] / [`run_on_kind`].
///
/// ```
/// use priosched_core::{PoolBuilder, PoolHandle, PoolKind, TaskPool};
///
/// let pool = PoolBuilder::new(PoolKind::Centralized)
///     .places(2)
///     .k(64)
///     .build::<u64>();
/// let mut h = pool.handle(0);
/// h.push(7, 64, 7);
/// assert_eq!(h.pop(), Some(7));
/// ```
#[derive(Clone, Copy, Debug)]
pub struct PoolBuilder {
    kind: PoolKind,
    places: usize,
    params: PoolParams,
}

impl PoolBuilder {
    /// Starts a builder for `kind` with one place and default parameters.
    pub fn new(kind: PoolKind) -> Self {
        PoolBuilder {
            kind,
            places: 1,
            params: PoolParams::default(),
        }
    }

    /// Sets the place count.
    pub fn places(mut self, places: usize) -> Self {
        self.places = places;
        self
    }

    /// Sets the relaxation bound `k`, raising `kmax` only if it would
    /// otherwise clamp `k` — an explicitly pinned [`PoolBuilder::kmax`] or
    /// [`PoolBuilder::params`] survives regardless of call order.
    pub fn k(mut self, k: usize) -> Self {
        self.params.k = k;
        self.params.kmax = self.params.kmax.max(k.min(u32::MAX as usize) as u32);
        self
    }

    /// Overrides `kmax` for the centralized structure.
    pub fn kmax(mut self, kmax: u32) -> Self {
        self.params.kmax = kmax;
        self
    }

    /// Bounds each ingress lane of a [`PoolBuilder::service`] built from
    /// this builder to `capacity` queued tasks (backpressure: `try_submit`
    /// sheds, blocking `submit` parks — see [`crate::ingest`]). Only
    /// paths that *construct* lanes honor it: `service` here, and
    /// sweep harnesses that build lanes from [`PoolParams`].
    /// [`PoolBuilder::run_stream`] drains caller-constructed lanes, whose
    /// bound is fixed at [`crate::IngressLanes::with_capacity`] time;
    /// closed-world runs have no lanes at all.
    pub fn lane_capacity(mut self, capacity: usize) -> Self {
        self.params.lane_capacity = Some(capacity);
        self
    }

    /// Selects what workers do when a task panics (see
    /// [`crate::FaultPolicy`]): honored by [`PoolBuilder::run`],
    /// [`PoolBuilder::run_stream`], and [`PoolBuilder::service`].
    pub fn fault_policy(mut self, policy: crate::FaultPolicy) -> Self {
        self.params.fault_policy = policy;
        self
    }

    /// Toggles flat-combining delegation of the structural pool's shared
    /// queue (default on; see [`PoolParams::combine`]). Other kinds ignore
    /// it.
    pub fn combining(mut self, combine: bool) -> Self {
        self.params.combine = combine;
        self
    }

    /// Sets the MultiQueue's queues-per-place factor `c` (see
    /// [`PoolParams::mq_c`]). Other kinds ignore it.
    pub fn mq_c(mut self, c: usize) -> Self {
        self.params.mq_c = c;
        self
    }

    /// Sets the MultiQueue's stickiness — consecutive pops served from
    /// the last successful queue before re-probing (see
    /// [`PoolParams::mq_stickiness`]). Other kinds ignore it.
    pub fn mq_stickiness(mut self, stickiness: usize) -> Self {
        self.params.mq_stickiness = stickiness;
        self
    }

    /// Toggles the MultiQueue's rank-error instrument (default off — it
    /// serializes every operation through the shadow heap; see
    /// [`PoolParams::rank_error`]). Other kinds ignore it.
    pub fn rank_error(mut self, enabled: bool) -> Self {
        self.params.rank_error = enabled;
        self
    }

    /// Replaces the whole parameter set.
    pub fn params(mut self, params: PoolParams) -> Self {
        self.params = params;
        self
    }

    /// The configured parameter set.
    pub fn pool_params(&self) -> PoolParams {
        self.params
    }

    /// Builds the type-erased pool, shared and ready for handles.
    pub fn build<T: Send + 'static>(&self) -> Arc<AnyPool<T>> {
        Arc::new(self.kind.build(self.places, self.params))
    }

    /// Schedules `executor` over `roots` on a fresh pool (monomorphized via
    /// [`run_on_kind`]).
    pub fn run<T, E>(&self, executor: &E, roots: Vec<(u64, usize, T)>) -> RunStats
    where
        T: Send + 'static,
        E: TaskExecutor<T>,
    {
        run_on_kind(self.kind, self.places, self.params, executor, roots)
    }

    /// Streamed sibling of [`PoolBuilder::run`] (see [`run_stream_on_kind`]).
    pub fn run_stream<T, E>(
        &self,
        executor: &E,
        roots: Vec<(u64, usize, T)>,
        ingress: &IngressLanes<T>,
    ) -> RunStats
    where
        T: Send + 'static,
        E: TaskExecutor<T>,
    {
        run_stream_on_kind(
            self.kind,
            self.places,
            self.params,
            executor,
            roots,
            ingress,
        )
    }

    /// Starts a long-lived [`PoolService`] over a freshly built pool of
    /// this builder's kind: one worker thread per place, accepting
    /// [`PoolService::submit`] / external [`crate::IngestHandle`]
    /// submissions until shutdown, with this builder's
    /// [`PoolBuilder::lane_capacity`] as the backpressure bound. The
    /// open-world front door for all five structures.
    pub fn service<T, E>(&self, executor: Arc<E>) -> PoolService<T>
    where
        T: Send + 'static,
        E: TaskExecutor<T> + Send + Sync + 'static,
    {
        PoolService::start_with_policy(
            self.build::<T>(),
            executor,
            self.params.lane_capacity,
            self.params.fault_policy,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::SpawnCtx;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn build_produces_matching_kind_and_places() {
        for kind in PoolKind::ALL {
            let pool: Arc<AnyPool<u64>> = Arc::new(kind.build(3, PoolParams::default()));
            assert_eq!(pool.kind(), kind);
            assert_eq!(pool.num_places(), 3);
        }
    }

    #[test]
    fn any_handle_round_trips_scalar_and_batch() {
        for kind in PoolKind::ALL {
            let pool: Arc<AnyPool<u64>> = PoolBuilder::new(kind).places(1).k(16).build();
            let mut h = pool.handle(0);
            h.push(5, 16, 5);
            let mut batch = vec![(1u64, 1u64), (9, 9), (3, 3)];
            h.push_batch(16, &mut batch);
            assert!(batch.is_empty(), "{kind}: push_batch must drain");
            let mut out = Vec::new();
            let mut got = 0;
            loop {
                let n = h.try_pop_batch(&mut out, 2);
                if n == 0 {
                    break;
                }
                got += n;
            }
            assert_eq!(got, 4, "{kind}");
            out.sort();
            assert_eq!(out, vec![1, 3, 5, 9], "{kind}");
            assert_eq!(h.stats().pushes, 4, "{kind}");
        }
    }

    struct CountDown(AtomicU64);
    impl TaskExecutor<u64> for CountDown {
        fn execute(&self, task: u64, ctx: &mut SpawnCtx<'_, u64>) {
            self.0.fetch_add(1, Ordering::Relaxed);
            if task > 0 {
                ctx.spawn(task - 1, 8, task - 1);
            }
        }
    }

    #[test]
    fn run_on_kind_schedules_every_structure() {
        for kind in PoolKind::ALL {
            for places in [1usize, 2] {
                let exec = CountDown(AtomicU64::new(0));
                let stats = run_on_kind(
                    kind,
                    places,
                    PoolParams::with_k(8),
                    &exec,
                    vec![(10, 8, 10u64)],
                );
                assert_eq!(stats.executed, 11, "{kind} places={places}");
                assert_eq!(exec.0.load(Ordering::Relaxed), 11);
            }
        }
    }

    #[test]
    fn builder_k_respects_pinned_kmax_in_any_order() {
        let params = |k: usize, kmax: u32| PoolParams {
            k,
            kmax,
            ..PoolParams::default()
        };
        // An explicit kmax survives a later .k() that it still admits…
        let b = PoolBuilder::new(PoolKind::Centralized).kmax(64).k(8);
        assert_eq!(b.pool_params(), params(8, 64));
        // …but .k() raises kmax when it would otherwise clamp.
        let b = PoolBuilder::new(PoolKind::Centralized).kmax(64).k(8192);
        assert_eq!(b.pool_params(), params(8192, 8192));
        // .params() is preserved by a later .k().
        let custom = params(1, 99);
        let b = PoolBuilder::new(PoolKind::Hybrid).params(custom).k(8);
        assert_eq!(b.pool_params(), params(8, 99));
        // .lane_capacity() composes with the other knobs.
        let b = PoolBuilder::new(PoolKind::Hybrid).k(8).lane_capacity(32);
        assert_eq!(b.pool_params().lane_capacity, Some(32));
    }

    #[test]
    fn builder_combining_toggle_reaches_the_structural_pool() {
        for (toggle, want) in [(true, true), (false, false)] {
            let pool: Arc<AnyPool<u64>> = PoolBuilder::new(PoolKind::Structural)
                .places(2)
                .combining(toggle)
                .build();
            match &*pool {
                AnyPool::Structural(p) => assert_eq!(p.combining(), want),
                other => panic!("expected structural, got {:?}", other.kind()),
            }
        }
    }

    #[test]
    fn builder_mq_knobs_reach_the_multiqueue_pool() {
        let pool: Arc<AnyPool<u64>> = PoolBuilder::new(PoolKind::MultiQueue)
            .places(2)
            .mq_c(4)
            .mq_stickiness(8)
            .rank_error(true)
            .build();
        match &*pool {
            AnyPool::MultiQueue(p) => {
                assert_eq!(p.c(), 4);
                assert_eq!(p.stickiness(), 8);
                assert!(p.rank_error_enabled());
            }
            other => panic!("expected multiqueue, got {:?}", other.kind()),
        }
        // Default construction clamps mq_c to ≥ 1 and keeps the shadow off.
        let pool: Arc<AnyPool<u64>> = PoolBuilder::new(PoolKind::MultiQueue)
            .places(1)
            .mq_c(0)
            .build();
        match &*pool {
            AnyPool::MultiQueue(p) => {
                assert_eq!(p.c(), 1);
                assert!(!p.rank_error_enabled());
            }
            other => panic!("expected multiqueue, got {:?}", other.kind()),
        }
    }

    #[test]
    fn builder_run_matches_direct_run() {
        let exec = CountDown(AtomicU64::new(0));
        let stats = PoolBuilder::new(PoolKind::Hybrid)
            .places(2)
            .k(4)
            .run(&exec, vec![(6, 4, 6u64)]);
        assert_eq!(stats.executed, 7);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn any_pool_propagates_handle_range_panics() {
        let pool: Arc<AnyPool<u64>> = PoolBuilder::new(PoolKind::Structural).places(2).build();
        let _ = pool.handle(5);
    }
}
