#![warn(missing_docs)]

//! Lock-free data structures for task-based priority scheduling.
//!
//! This crate is a from-scratch Rust implementation of the three scheduling
//! data structures of *Wimmer, Cederman, Versaci, Träff, Tsigas: "Data
//! Structures for Task-based Priority Scheduling"* (PPoPP 2014,
//! arXiv:1312.2501), together with the task-scheduling runtime they plug
//! into:
//!
//! * [`workstealing::PriorityWorkStealing`] — work-stealing with per-place
//!   priority queues and steal-half (§3.1). Scalable, but provides **no
//!   global ordering guarantee**.
//! * [`centralized::CentralizedKPriority`] — a single global, ρ-relaxed
//!   priority ordering (§3.2, §4.1): a pop may ignore at most the `k` newest
//!   items (ρ = k).
//! * [`hybrid::HybridKPriority`] — the paper's main recommendation (§3.3,
//!   §4.2): local lists published to a global list every `k` pushes, with
//!   read-only *spying* instead of stealing. A pop may ignore at most the
//!   `k` newest items *of each place* (ρ = P·k).
//!
//! All three implement the [`pool::TaskPool`] interface used by the
//! [`scheduler::Scheduler`] (places, help-first spawning, termination
//! detection, finish regions — §2 of the paper).
//!
//! # Priorities
//!
//! Priorities are `u64` values, **smaller is higher priority**, matching the
//! paper's SSSP convention ("priority, smaller is better", Listing 5).
//! [`priority_from_f64`] maps non-negative floats (e.g. tentative distances)
//! to order-preserving `u64` keys.
//!
//! # Relaxation semantics (§2.2)
//!
//! A pop is never required to return the globally best task, but the number
//! of *newer* tasks that may be ignored in favour of an older, worse one is
//! bounded: by `k` for the centralized structure and by `P·k` for the hybrid
//! one. Work-stealing provides no such bound. The `k` parameter is supplied
//! **per task**, so kernels with different ordering requirements can coexist
//! (§1).
//!
//! # Memory reclamation
//!
//! The paper relies on a wait-free memory manager \[18\]. Here, task *items*
//! live in a pool that recycles them through a lock-free free list and only
//! releases memory when the data structure is dropped; position-derived tags
//! make recycling ABA-safe exactly as in §4.1.3/§4.2.3. See DESIGN.md §4 for
//! the substitution rationale.

pub mod centralized;
pub mod garray;
pub mod hybrid;
pub mod item;
pub mod pareto;
pub mod pool;
pub mod scheduler;
pub mod stats;
pub mod structural;
pub mod task;
pub(crate) mod util;
pub mod workstealing;

pub use centralized::CentralizedKPriority;
pub use hybrid::HybridKPriority;
pub use pool::{PoolHandle, PoolKind, TaskPool};
pub use scheduler::{RunStats, Scheduler, SpawnCtx, TaskExecutor};
pub use structural::StructuralKPriority;
pub use workstealing::PriorityWorkStealing;

/// Maps a non-negative, non-NaN `f64` to a `u64` key with the same order.
///
/// For non-negative IEEE-754 doubles the raw bit pattern is already
/// monotonically increasing, so the conversion is a transmute. `+∞` is
/// allowed (it encodes "unreached" priorities).
///
/// # Panics
/// Panics (debug builds) if `x` is negative.
#[inline]
pub fn priority_from_f64(x: f64) -> u64 {
    debug_assert!(x >= 0.0, "priority_from_f64 requires non-negative input");
    x.to_bits()
}

/// Inverse of [`priority_from_f64`].
#[inline]
pub fn priority_to_f64(bits: u64) -> f64 {
    f64::from_bits(bits)
}

#[cfg(test)]
mod conversion_tests {
    use super::*;

    #[test]
    fn f64_priority_is_order_preserving() {
        let xs = [0.0, 1e-300, 0.5, 1.0, 1.5, 42.0, 1e300, f64::INFINITY];
        for w in xs.windows(2) {
            assert!(priority_from_f64(w[0]) < priority_from_f64(w[1]));
        }
    }

    #[test]
    fn f64_priority_round_trips() {
        for x in [0.0, 0.25, 3.5, 1e10, f64::INFINITY] {
            assert_eq!(priority_to_f64(priority_from_f64(x)), x);
        }
    }
}
