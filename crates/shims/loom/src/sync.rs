//! Model-checked `Mutex` and `Condvar`, mirroring `std::sync`.

use crate::rt;
use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};
use std::sync::{LockResult, TryLockError, TryLockResult};
use std::time::Duration;

pub mod atomic;

/// Mutex whose lock/unlock are visible operations of the model.
///
/// Never poisons: a model-thread panic aborts the whole execution, so
/// `lock()` always returns `Ok` — matching loom, whose mutex is also
/// poison-free behind a `LockResult` signature.
pub struct Mutex<T: ?Sized> {
    id: rt::Loc,
    data: UnsafeCell<T>,
}

unsafe impl<T: ?Sized + Send> Send for Mutex<T> {}
unsafe impl<T: ?Sized + Send> Sync for Mutex<T> {}

/// Guard for [`Mutex`]; unlocks on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a mutex (registers it with the active model execution).
    pub fn new(data: T) -> Mutex<T> {
        Mutex {
            id: rt::mutex_register(),
            data: UnsafeCell::new(data),
        }
    }

    /// Consume the mutex and return its data.
    pub fn into_inner(self) -> LockResult<T> {
        Ok(self.data.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire, blocking the model thread until available.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        rt::mutex_lock(self.id);
        Ok(MutexGuard { lock: self })
    }

    /// Non-blocking acquire attempt.
    pub fn try_lock(&self) -> TryLockResult<MutexGuard<'_, T>> {
        if rt::mutex_try_lock(self.id) {
            Ok(MutexGuard { lock: self })
        } else {
            Err(TryLockError::WouldBlock)
        }
    }

    /// Exclusive access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        Ok(self.data.get_mut())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the model scheduler enforces mutual exclusion — this
        // guard exists only while the runtime records us as the owner.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as in `deref`; ownership is exclusive by construction.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        rt::mutex_unlock(self.lock.id);
    }
}

/// Result of a timed condvar wait; mirrors `std::sync::WaitTimeoutResult`
/// (which has no public constructor, hence this local type).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait ended because the (model) timeout fired.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Model condition variable.
///
/// Untimed waits never wake spuriously: a lost notification therefore
/// shows up as a model deadlock instead of being papered over. Timed
/// waits may be woken by a scheduler-chosen timeout.
#[derive(Default)]
pub struct Condvar {
    id_cell: std::sync::OnceLock<rt::Loc>,
}

impl Condvar {
    /// Create a condvar; registration with the execution is deferred to
    /// first use so `Condvar::new()` stays const-free but cheap.
    pub fn new() -> Condvar {
        Condvar {
            id_cell: std::sync::OnceLock::new(),
        }
    }

    fn id(&self) -> rt::Loc {
        *self.id_cell.get_or_init(rt::condvar_register)
    }

    /// Release the guard's mutex, wait for a notification, reacquire.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        let lock = guard.lock;
        std::mem::forget(guard);
        rt::condvar_wait(self.id(), lock.id, false);
        Ok(MutexGuard { lock })
    }

    /// Timed wait; the duration is ignored (model time), the timeout is a
    /// scheduler choice instead.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        _dur: Duration,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        let lock = guard.lock;
        std::mem::forget(guard);
        let timed_out = rt::condvar_wait(self.id(), lock.id, true);
        Ok((MutexGuard { lock }, WaitTimeoutResult(timed_out)))
    }

    /// Wake one waiter (the lowest-numbered, deterministically).
    pub fn notify_one(&self) {
        rt::condvar_notify(self.id(), false);
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        rt::condvar_notify(self.id(), true);
    }
}

// `loom::sync::Arc` mirrors the real loom crate's re-export; the std Arc
// is fine under the model (refcounts are not part of the checked state).
pub use std::sync::Arc;
