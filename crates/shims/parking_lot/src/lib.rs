//! In-tree shim for the subset of `parking_lot` used by this workspace.
//!
//! Wraps `std::sync::Mutex` with `parking_lot`'s panic-free, non-poisoning
//! API (`lock()` returns the guard directly, `try_lock()` returns an
//! `Option`). Poisoning is deliberately ignored: a panicked place handle
//! leaves plain data (task queues) behind, and the scheduler's abort path
//! already contains panics — see `scheduler::SpawnCtx::run_one`.

use std::fmt;
use std::sync::{Mutex as StdMutex, MutexGuard as StdGuard, TryLockError};

/// Mutual exclusion primitive (non-poisoning facade over `std`).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

/// RAII guard; unlocks on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: StdGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates an unlocked mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let inner = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { inner }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: p.into_inner(),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_try_lock() {
        let m = Mutex::new(1);
        {
            let mut g = m.lock();
            *g += 1;
            assert!(m.try_lock().is_none(), "held lock blocks try_lock");
        }
        assert_eq!(*m.try_lock().unwrap(), 2);
    }

    #[test]
    fn survives_poisoning() {
        let m = std::sync::Arc::new(Mutex::new(5));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        assert_eq!(*m.lock(), 5, "lock() ignores poisoning");
    }
}
