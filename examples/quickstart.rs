//! Quickstart: prioritized task scheduling in ~50 lines.
//!
//! Spawns a tree of tasks where each task's priority is its depth, runs it
//! over all three of the paper's data structures, and shows the scheduling
//! statistics each one produces.
//!
//! Run with: `cargo run --release --example quickstart`

use priosched::core::{run_on_kind, PoolKind, PoolParams, SpawnCtx, TaskExecutor};
use std::sync::atomic::{AtomicU64, Ordering};

/// A task is (depth, width-index); executing it spawns `FANOUT` children
/// until `MAX_DEPTH`, preferring shallow tasks (priority = depth).
struct TreeWalk {
    executed: AtomicU64,
}

const FANOUT: u64 = 3;
const MAX_DEPTH: u64 = 8;
const K: usize = 64;

impl TaskExecutor<(u64, u64)> for TreeWalk {
    fn execute(&self, (depth, _i): (u64, u64), ctx: &mut SpawnCtx<'_, (u64, u64)>) {
        self.executed.fetch_add(1, Ordering::Relaxed);
        if depth < MAX_DEPTH {
            for i in 0..FANOUT {
                // Help-first spawn (§2): the child is *stored*, we continue.
                ctx.spawn(depth + 1, K, (depth + 1, i));
            }
        }
    }
}

fn run_with(kind: PoolKind, places: usize) {
    let exec = TreeWalk {
        executed: AtomicU64::new(0),
    };
    let roots = vec![(0u64, K, (0u64, 0u64))];
    // One dispatch before the run; the scheduling loop itself is
    // monomorphized per structure (see priosched::core::facade).
    let stats = run_on_kind(kind, places, PoolParams::default(), &exec, roots);
    let expected: u64 = (0..=MAX_DEPTH).map(|d| FANOUT.pow(d as u32)).sum();
    assert_eq!(stats.executed, expected);
    println!(
        "{:<14} executed {:>6} tasks in {:>8.2?}  (pushes {:>6}, steals {:>3}, spies {:>3}, publishes {:>4})",
        kind.label(),
        stats.executed,
        stats.elapsed,
        stats.pool.pushes,
        stats.pool.steals,
        stats.pool.spies,
        stats.pool.publishes,
    );
}

fn main() {
    let places = std::thread::available_parallelism()
        .map(|c| c.get().min(8))
        .unwrap_or(2)
        .max(2);
    println!(
        "priosched {} quickstart: {places} places, fanout {FANOUT}, depth {MAX_DEPTH}\n",
        priosched::VERSION
    );
    for kind in PoolKind::PAPER {
        run_with(kind, places);
    }
    println!("\nAll three structures executed every task exactly once.");
    println!("Note how the hybrid structure substitutes spying for stealing,");
    println!("and publishes its local list roughly every k = {K} pushes.");
}
