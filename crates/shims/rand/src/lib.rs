//! In-tree shim for the subset of `rand` 0.8 used by this workspace.
//!
//! The offline build environment has no crates.io access, so the trait
//! surface the graph generator and simulator rely on — `RngCore`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen, gen_bool, gen_range}`, and
//! `seq::SliceRandom::shuffle` — is implemented here. Generators live in
//! the `rand_chacha` shim.

/// Core randomness source: everything derives from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (only the `seed_from_u64` entry point is needed).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed, expanding it to full state.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from their "standard" distribution:
/// full range for integers, `[0, 1)` for floats.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 random mantissa bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 random mantissa bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `T`'s standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }

    /// Uniform integer in `[low, high)` (Lemire multiply-shift).
    fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64
    where
        Self: Sized,
    {
        let span = range.end - range.start;
        assert!(span > 0, "gen_range over empty range");
        range.start + ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Slice shuffling (the `rand::seq` subset used by the simulator).
pub mod seq {
    use super::RngCore;

    /// Extension trait adding in-place shuffling to slices.
    pub trait SliceRandom {
        /// Uniform Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                // Uniform j in [0, i] via multiply-shift.
                let j = ((rng.next_u64() as u128 * (i as u128 + 1)) >> 64) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            // Weak generator, but enough to exercise the trait plumbing.
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn floats_are_in_unit_interval() {
        let mut rng = Counter(42);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(7);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Counter(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Counter(9);
        for _ in 0..1000 {
            let x = rng.gen_range(5..15);
            assert!((5..15).contains(&x));
        }
    }
}
