//! Bi-objective shortest path search with the k-relaxed Pareto queue.
//!
//! The paper's conclusion names "k-relaxed Pareto priority queues with
//! guarantees that can then be used for parallelization of a multi-objective
//! shortest path search" as planned future work, citing Sanders & Mandow's
//! parallel label-setting. This example exercises our prototype
//! (`priosched::core::pareto`) on exactly that workload: a label-setting
//! search computing, per node, the Pareto front of (time, cost) path
//! signatures, verified against an exhaustive sequential reference.
//!
//! Run with: `cargo run --release --example multi_objective_sssp`

use priosched::core::pareto::{dominates, BiPriority, ParetoKRelaxed};
use priosched::graph::{erdos_renyi, CsrGraph, ErdosRenyiConfig};
use std::sync::Arc;

/// A search label: reached `node` with accumulated (time, cost).
#[derive(Clone, Copy, Debug)]
struct Label {
    node: u32,
    costs: BiPriority,
}

/// Second objective per edge, derived deterministically from the endpoints
/// (the base graph stores one weight; real instances would carry both).
fn second_weight(u: u32, v: u32) -> u64 {
    let x = ((u.min(v) as u64) << 32 | u.max(v) as u64).wrapping_mul(0x9E3779B97F4A7C15);
    1 + (x >> 48) % 97
}

/// First objective per edge: the stored float weight, scaled to integers.
fn first_weight(w: f32) -> u64 {
    1 + (w as f64 * 1000.0) as u64
}

/// Inserts `costs` into `front` if non-dominated; prunes dominated entries.
/// Returns false when `costs` was dominated (label is dead).
fn update_front(front: &mut Vec<BiPriority>, costs: BiPriority) -> bool {
    if front.iter().any(|&f| dominates(f, costs) || f == costs) {
        return false;
    }
    front.retain(|&f| !dominates(costs, f));
    front.push(costs);
    true
}

/// Label-setting search over the Pareto queue; returns per-node fronts.
fn pareto_search(graph: &CsrGraph, source: u32, k: usize) -> Vec<Vec<BiPriority>> {
    let queue = Arc::new(ParetoKRelaxed::new(1, k));
    let mut handle = queue.handle(0);
    let mut fronts: Vec<Vec<BiPriority>> = vec![Vec::new(); graph.num_nodes()];
    fronts[source as usize].push([0, 0]);
    handle.push(
        [0, 0],
        Label {
            node: source,
            costs: [0, 0],
        },
    );
    let mut popped = 0usize;
    while let Some((_prio, label)) = handle.pop() {
        popped += 1;
        // Dead-label elimination: superseded by the node's current front.
        if !fronts[label.node as usize].contains(&label.costs) {
            continue;
        }
        for e in graph.neighbors(label.node) {
            let costs = [
                label.costs[0] + first_weight(e.weight),
                label.costs[1] + second_weight(label.node, e.target),
            ];
            if update_front(&mut fronts[e.target as usize], costs) {
                handle.push(
                    costs,
                    Label {
                        node: e.target,
                        costs,
                    },
                );
            }
        }
    }
    println!("  popped {popped} labels (k = {k})");
    fronts
}

/// Exhaustive reference: Bellman–Ford-style label correction to fixpoint.
fn reference_fronts(graph: &CsrGraph, source: u32) -> Vec<Vec<BiPriority>> {
    let n = graph.num_nodes();
    let mut fronts: Vec<Vec<BiPriority>> = vec![Vec::new(); n];
    fronts[source as usize].push([0, 0]);
    loop {
        let mut changed = false;
        for u in 0..n as u32 {
            let labels = fronts[u as usize].clone();
            for e in graph.neighbors(u) {
                for &l in &labels {
                    let costs = [
                        l[0] + first_weight(e.weight),
                        l[1] + second_weight(u, e.target),
                    ];
                    if update_front(&mut fronts[e.target as usize], costs) {
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            return fronts;
        }
    }
}

fn canon(mut f: Vec<BiPriority>) -> Vec<BiPriority> {
    f.sort();
    f
}

fn main() {
    let graph = erdos_renyi(&ErdosRenyiConfig {
        n: 60,
        p: 0.12,
        seed: 99,
    });
    println!(
        "bi-objective search on G(n = {}, m = {})\n",
        graph.num_nodes(),
        graph.num_edges()
    );
    let expect = reference_fronts(&graph, 0);
    for k in [0usize, 8, 64] {
        let fronts = pareto_search(&graph, 0, k);
        for v in 0..graph.num_nodes() {
            assert_eq!(
                canon(fronts[v].clone()),
                canon(expect[v].clone()),
                "node {v} front mismatch at k = {k}"
            );
        }
    }
    let sizes: Vec<usize> = expect.iter().map(|f| f.len()).collect();
    let total: usize = sizes.iter().sum();
    let max = sizes.iter().max().unwrap();
    println!("\nall per-node Pareto fronts match the exhaustive reference");
    println!(
        "front sizes: total {total}, max {max} over {} nodes",
        sizes.len()
    );
    println!("\nThe k-relaxed queue returns *some* non-dominated label per pop;");
    println!("label-setting with dead-label elimination converges to the exact");
    println!("fronts for any k — k only shifts work/synchronization balance.");
}
