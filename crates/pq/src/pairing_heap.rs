//! Pointer-based pairing heap with two-pass melding.
//!
//! A second, structurally independent implementation of
//! [`SequentialPriorityQueue`]. The scheduler uses it for differential
//! testing against [`crate::BinaryHeap`], and it is a reasonable choice for
//! workloads dominated by `push` and `append` (both O(1)).

use crate::SequentialPriorityQueue;

#[derive(Clone, Debug)]
struct Node<T> {
    item: T,
    children: Vec<Node<T>>,
}

impl<T: Ord> Node<T> {
    fn singleton(item: T) -> Self {
        Node {
            item,
            children: Vec::new(),
        }
    }

    /// Melds two heaps: the root with the larger item becomes a child of the
    /// root with the smaller item. O(1).
    fn meld(mut a: Node<T>, mut b: Node<T>) -> Node<T> {
        if b.item < a.item {
            b.children.push(a);
            b
        } else {
            a.children.push(b);
            a
        }
    }

    /// Two-pass pairing combine of an arbitrary list of heaps.
    fn combine(mut heaps: Vec<Node<T>>) -> Option<Node<T>> {
        if heaps.is_empty() {
            return None;
        }
        // First pass: meld adjacent pairs left to right.
        let mut paired = Vec::with_capacity(heaps.len() / 2 + 1);
        let mut iter = heaps.drain(..);
        while let Some(a) = iter.next() {
            match iter.next() {
                Some(b) => paired.push(Node::meld(a, b)),
                None => paired.push(a),
            }
        }
        drop(iter);
        // Second pass: meld right to left into a single heap.
        let mut acc = paired.pop().expect("non-empty by construction");
        while let Some(h) = paired.pop() {
            acc = Node::meld(h, acc);
        }
        Some(acc)
    }
}

/// Pairing min-heap.
#[derive(Clone, Debug)]
pub struct PairingHeap<T> {
    root: Option<Node<T>>,
    len: usize,
}

impl<T> Default for PairingHeap<T> {
    fn default() -> Self {
        PairingHeap { root: None, len: 0 }
    }
}

impl<T: Ord> PairingHeap<T> {
    /// Checks the heap-order invariant by full traversal; used by tests.
    pub fn is_valid_heap(&self) -> bool {
        fn check<T: Ord>(node: &Node<T>) -> bool {
            node.children
                .iter()
                .all(|c| node.item <= c.item && check(c))
        }
        self.root.as_ref().is_none_or(check)
    }

    /// Iterative drain of the tree into a vector (arbitrary order); avoids
    /// recursion so deep heaps cannot overflow the stack.
    fn drain_nodes(&mut self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.len);
        let mut stack: Vec<Node<T>> = self.root.take().into_iter().collect();
        while let Some(mut node) = stack.pop() {
            out.push(node.item);
            stack.append(&mut node.children);
        }
        self.len = 0;
        out
    }
}

impl<T: Ord> SequentialPriorityQueue<T> for PairingHeap<T> {
    fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, item: T) {
        let single = Node::singleton(item);
        self.root = Some(match self.root.take() {
            Some(root) => Node::meld(root, single),
            None => single,
        });
        self.len += 1;
    }

    fn pop(&mut self) -> Option<T> {
        let root = self.root.take()?;
        self.len -= 1;
        self.root = Node::combine(root.children);
        Some(root.item)
    }

    fn peek(&self) -> Option<&T> {
        self.root.as_ref().map(|n| &n.item)
    }

    fn len(&self) -> usize {
        self.len
    }

    fn clear(&mut self) {
        // Drop iteratively to avoid recursive Drop blowing the stack on
        // degenerate (list-shaped) heaps.
        let _ = self.drain_nodes();
    }

    fn split_half(&mut self) -> Self {
        let items = self.drain_nodes();
        let n = items.len();
        let mut stolen = PairingHeap::new();
        let mut kept = PairingHeap::new();
        for (i, x) in items.into_iter().enumerate() {
            if i % 2 == 0 {
                stolen.push(x);
            } else {
                kept.push(x);
            }
        }
        debug_assert_eq!(stolen.len(), n.div_ceil(2));
        *self = kept;
        stolen
    }

    fn retain<F: FnMut(&T) -> bool>(&mut self, mut keep: F) {
        let items = self.drain_nodes();
        for x in items {
            if keep(&x) {
                self.push(x);
            }
        }
    }

    fn append(&mut self, other: &mut Self) {
        let other_root = other.root.take();
        let other_len = std::mem::take(&mut other.len);
        self.root = match (self.root.take(), other_root) {
            (Some(a), Some(b)) => Some(Node::meld(a, b)),
            (a, b) => a.or(b),
        };
        self.len += other_len;
    }

    fn drain_unordered(&mut self) -> Vec<T> {
        self.drain_nodes()
    }

    /// Bulk insertion via multi-pass melding: the batch becomes singleton
    /// heaps, one two-pass pairing combine folds them into a single heap
    /// (O(m) melds), and one final meld attaches the result to the root —
    /// versus `m` root melds for scalar pushes, which degrade the root's
    /// child list and later `pop`s.
    fn extend_batch<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        let singles: Vec<Node<T>> = iter.into_iter().map(Node::singleton).collect();
        if singles.is_empty() {
            return;
        }
        self.len += singles.len();
        let combined = Node::combine(singles).expect("non-empty batch");
        self.root = Some(match self.root.take() {
            Some(root) => Node::meld(root, combined),
            None => combined,
        });
    }
}

impl<T: Ord> FromIterator<T> for PairingHeap<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut h = PairingHeap::new();
        for x in iter {
            h.push(x);
        }
        h
    }
}

impl<T> Drop for PairingHeap<T> {
    fn drop(&mut self) {
        // Iterative teardown; the derived recursive drop can overflow the
        // stack for adversarially list-shaped heaps.
        let mut stack: Vec<Node<T>> = self.root.take().into_iter().collect();
        while let Some(mut node) = stack.pop() {
            stack.append(&mut node.children);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn popped(mut h: PairingHeap<i64>) -> Vec<i64> {
        let mut out = Vec::new();
        while let Some(x) = h.pop() {
            out.push(x);
        }
        out
    }

    #[test]
    fn pops_in_sorted_order() {
        let h: PairingHeap<i64> = [9, 4, 7, 1, -3, 7, 0].into_iter().collect();
        assert_eq!(popped(h), vec![-3, 0, 1, 4, 7, 7, 9]);
    }

    #[test]
    fn len_tracks_push_pop() {
        let mut h = PairingHeap::new();
        for i in 0..100 {
            h.push(i);
            assert_eq!(h.len(), (i + 1) as usize);
        }
        for i in (0..100).rev() {
            h.pop();
            assert_eq!(h.len(), i as usize);
        }
    }

    #[test]
    fn split_half_sizes_and_multiset() {
        for n in 0..33usize {
            let mut h: PairingHeap<usize> = (0..n).collect();
            let stolen = h.split_half();
            assert_eq!(stolen.len(), n.div_ceil(2));
            assert_eq!(h.len(), n / 2);
            let mut all: Vec<usize> = h.drain_unordered();
            let mut s = stolen;
            all.extend(s.drain_unordered());
            all.sort();
            assert_eq!(all, (0..n).collect::<Vec<_>>());
        }
    }

    #[test]
    fn retain_keeps_only_matching() {
        let mut h: PairingHeap<i64> = (0..30).collect();
        h.retain(|x| x % 5 == 0);
        assert_eq!(popped(h), vec![0, 5, 10, 15, 20, 25]);
    }

    #[test]
    fn append_moves_everything() {
        let mut a: PairingHeap<i64> = [3, 1].into_iter().collect();
        let mut b: PairingHeap<i64> = [2, 0].into_iter().collect();
        a.append(&mut b);
        assert_eq!(b.len(), 0);
        assert_eq!(popped(a), vec![0, 1, 2, 3]);
    }

    #[test]
    fn deep_list_shaped_heap_drops_without_overflow() {
        // Pushing a strictly decreasing sequence produces a long chain.
        let mut h = PairingHeap::new();
        for i in (0..200_000).rev() {
            h.push(i);
        }
        drop(h); // must not overflow the stack
    }

    #[test]
    fn heap_invariant_after_mixed_ops() {
        let mut h: PairingHeap<i64> = (0..50).rev().collect();
        for _ in 0..20 {
            h.pop();
        }
        for i in 100..130 {
            h.push(i);
        }
        assert!(h.is_valid_heap());
    }
}
